package enumerate_test

import (
	"reflect"
	"testing"

	"setagree/internal/enumerate"
	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"

	"setagree/internal/explore"
)

// TestSweepSymmetryEquivalence: a sweep under symmetry reduction
// reaches exactly the same report — candidates, solvers, inconclusive,
// sample failure — as the unreduced sweep, with zero fallbacks when
// every candidate's system admits the reduction.
func TestSweepSymmetryEquivalence(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	base, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2), enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []explore.Symmetry{explore.SymmetryIDs, explore.SymmetryValues} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			red, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2),
				enumerate.SweepOptions{Symmetry: mode})
			if err != nil {
				t.Fatal(err)
			}
			if red.SymmetryFallbacks != 0 {
				t.Errorf("%d fallbacks on a fully symmetric family", red.SymmetryFallbacks)
			}
			if red.Candidates != base.Candidates || red.Pruned != base.Pruned {
				t.Fatalf("candidates/pruned %d/%d, want %d/%d",
					red.Candidates, red.Pruned, base.Candidates, base.Pruned)
			}
			if !reflect.DeepEqual(red.Solvers, base.Solvers) {
				t.Errorf("solver sets differ: reduced %v, unreduced %v", red.Solvers, base.Solvers)
			}
			if !reflect.DeepEqual(red.Inconclusive, base.Inconclusive) {
				t.Errorf("inconclusive sets differ: reduced %v, unreduced %v",
					red.Inconclusive, base.Inconclusive)
			}
			if (red.SampleFailure == nil) != (base.SampleFailure == nil) {
				t.Errorf("sample failure presence differs")
			}
			if red.States > base.States {
				t.Errorf("reduced sweep explored more states (%d) than unreduced (%d)",
					red.States, base.States)
			}
		})
	}
}

// TestSweepSymmetryFallback: a family whose object base includes a
// fetch&add counter (whose state lacks spec.Symmetric) cannot be
// reduced; every candidate transparently falls back to an unreduced
// check, the report matches the Symmetry-off sweep, and the fallbacks
// are counted in both the report and the sweep.symmetry_fallbacks
// metric.
func TestSweepSymmetryFallback(t *testing.T) {
	t.Parallel()
	f := &enumerate.Family{
		Objects: []spec.Spec{objects.NewConsensus(2), objects.NewCounter()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
		},
		Depth:   1,
		Actions: []enumerate.Action{enumerate.ActDecideLast, enumerate.ActRetry},
	}
	base, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2), enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	red, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2),
		enumerate.SweepOptions{Symmetry: explore.SymmetryIDs, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	if red.Candidates == 0 {
		t.Fatal("sweep checked no candidates")
	}
	if red.SymmetryFallbacks != red.Candidates {
		t.Fatalf("SymmetryFallbacks = %d, want every candidate (%d)",
			red.SymmetryFallbacks, red.Candidates)
	}
	if got := sink.Snapshot().Counters["sweep.symmetry_fallbacks"]; got != int64(red.Candidates) {
		t.Fatalf("sweep.symmetry_fallbacks = %d, want %d", got, red.Candidates)
	}
	if !reflect.DeepEqual(red.Solvers, base.Solvers) || red.States != base.States {
		t.Fatalf("fallback sweep diverged from unreduced: %d/%d states, solvers %v vs %v",
			red.States, base.States, red.Solvers, base.Solvers)
	}
}

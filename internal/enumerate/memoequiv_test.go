package enumerate_test

import (
	"fmt"
	"testing"

	"setagree/internal/enumerate"
	"setagree/internal/explore"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// thm71Family is the Theorem 7.1 depth-1 family over {2-consensus,
// register} — the 1116-candidate DAC sweep (EXPERIMENTS E8).
func thm71Family() *enumerate.Family {
	return &enumerate.Family{
		Objects: []spec.Spec{objects.NewConsensus(2), objects.NewRegister()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
		},
		Depth: 1,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
}

// renderFull extends renderReport with the fallback counter, so the
// memo-equivalence comparison also pins SymmetryFallbacks (the memo
// path re-derives the mode evolution per vector via ProbeSymmetry;
// this is where a divergence would surface).
func renderFull(rep *enumerate.Report) string {
	return fmt.Sprintf("fallbacks=%d\n%s", rep.SymmetryFallbacks, renderReport(rep))
}

// TestMemoByteEquivalence pins the memoizer's core transparency
// promise at the engine level: for both reference sweeps, at worker
// counts 1 and 4 and with symmetry reduction off and at ids, the
// memoized sweep renders a report byte-identical to the unmemoized
// one — same aggregates, same solver and inconclusive sets, and the
// same sample failure with the same materialized violation (witness
// and cycle included, exercising materializeViolation against the
// concrete counterexample the plain engine reports).
func TestMemoByteEquivalence(t *testing.T) {
	t.Parallel()
	vectors := binaryVectors(3)
	sweeps := []struct {
		name string
		run  func(opts enumerate.SweepOptions) (*enumerate.Report, error)
	}{
		{"thm52", func(opts enumerate.SweepOptions) (*enumerate.Report, error) {
			return enumerate.FalsifySymmetric(theorem42Family(1), task.Consensus{N: 3}, vectors, opts)
		}},
		{"thm71", func(opts enumerate.SweepOptions) (*enumerate.Report, error) {
			return enumerate.FalsifyDAC(thm71Family(), 3, vectors, opts)
		}},
	}
	for _, sw := range sweeps {
		sw := sw
		t.Run(sw.name, func(t *testing.T) {
			t.Parallel()
			for _, sym := range []explore.Symmetry{explore.SymmetryOff, explore.SymmetryIDs} {
				for _, workers := range []int{1, 4} {
					off, err := sw.run(enumerate.SweepOptions{
						Workers: workers, Symmetry: sym, DisableMemo: true,
					})
					if err != nil {
						t.Fatalf("sym=%v workers=%d memo=off: %v", sym, workers, err)
					}
					on, err := sw.run(enumerate.SweepOptions{
						Workers: workers, Symmetry: sym,
					})
					if err != nil {
						t.Fatalf("sym=%v workers=%d memo=on: %v", sym, workers, err)
					}
					if got, want := renderFull(on), renderFull(off); got != want {
						t.Errorf("sym=%v workers=%d: memoized report differs:\n%s\nvs\n%s",
							sym, workers, got, want)
					}
				}
			}
		})
	}
}

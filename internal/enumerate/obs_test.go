package enumerate_test

import (
	"reflect"
	"testing"

	"setagree/internal/enumerate"
	"setagree/internal/obs"
)

// TestObsSnapshotDeterminism runs the same sweep twice with fresh
// sinks and requires bit-identical counter and gauge values: every
// metric is a sum of work done, never a wall-time sample, so identical
// inputs must yield identical numbers at any worker count. Wall time
// is confined to timer totals, which are deliberately excluded. Run
// under -race this also certifies the sweep's concurrent counter
// updates.
//
// Memoization is disabled here on purpose: with the memo on, which
// candidate of an equivalence class does the concrete exploration is a
// race between workers, so explore.* totals, sweep.memo_hits /
// sweep.dedup_candidates, and the sweep.candidate timer count become
// schedule-dependent (the verdict counters and Report bytes do not —
// TestObsMemoDeterministicSubset pins that).
func TestObsSnapshotDeterminism(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	vectors := binaryVectors(3)
	sweep := func(workers int) obs.Snapshot {
		sink := obs.NewSink()
		if _, err := enumerate.FalsifyDAC(f, 3, vectors,
			enumerate.SweepOptions{Workers: workers, Obs: sink, DisableMemo: true}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sink.Snapshot()
	}
	// timerCounts projects out the deterministic half of each timer
	// (observation counts; totals are wall time and may vary).
	timerCounts := func(s obs.Snapshot) map[string]int64 {
		out := make(map[string]int64, len(s.Timers))
		for name, ts := range s.Timers {
			out[name] = ts.Count
		}
		return out
	}
	check := func(label string, base, got obs.Snapshot) {
		t.Helper()
		if !reflect.DeepEqual(base.Counters, got.Counters) {
			t.Errorf("%s: counters differ:\n%+v\nvs\n%+v", label, got.Counters, base.Counters)
		}
		if !reflect.DeepEqual(base.Gauges, got.Gauges) {
			t.Errorf("%s: gauges differ:\n%+v\nvs\n%+v", label, got.Gauges, base.Gauges)
		}
		if bc, gc := timerCounts(base), timerCounts(got); !reflect.DeepEqual(bc, gc) {
			t.Errorf("%s: timer counts differ:\n%+v\nvs\n%+v", label, gc, bc)
		}
	}

	base := sweep(1)
	if base.Counters["sweep.candidates"] == 0 {
		t.Fatal("sweep counted no candidates")
	}
	if base.Counters["sweep.states"] == 0 {
		t.Fatal("sweep counted no states")
	}
	if base.Counters["explore.states"] == 0 {
		t.Fatal("explorer counters did not accumulate across the sweep")
	}
	// Identical run, fresh sink: identical snapshot.
	check("re-run", base, sweep(1))
	// The counters are schedule-independent sums, so worker count must
	// not change them either.
	check("workers=2", base, sweep(2))
	check("workers=8", base, sweep(8))
}

// TestObsMemoDeterministicSubset pins the memoized sweep's determinism
// contract: verdict counters (sweep.candidates / refuted / solvers /
// inconclusive / symmetry_fallbacks / pruned), attributed sweep.states,
// and Report bytes stay schedule-independent at any worker count, even
// though which candidate of an equivalence class runs concretely — and
// hence explore.* totals and memo-hit counts — is a worker race. It
// also checks the memo actually fired (sweep.memo_hits > 0) so the
// deduplication claims are not vacuous.
func TestObsMemoDeterministicSubset(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	vectors := binaryVectors(3)
	deterministic := []string{
		"sweep.sweeps", "sweep.candidates", "sweep.refuted", "sweep.solvers",
		"sweep.inconclusive", "sweep.symmetry_fallbacks", "sweep.pruned",
		"sweep.states",
	}
	sweep := func(workers int) (obs.Snapshot, string) {
		sink := obs.NewSink()
		rep, err := enumerate.FalsifyDAC(f, 3, vectors,
			enumerate.SweepOptions{Workers: workers, Obs: sink})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sink.Snapshot(), renderReport(rep)
	}
	base, baseRender := sweep(1)
	if base.Counters["sweep.memo_hits"] == 0 {
		t.Fatal("memoized sweep recorded no memo hits")
	}
	for _, workers := range []int{2, 8} {
		got, render := sweep(workers)
		for _, name := range deterministic {
			if got.Counters[name] != base.Counters[name] {
				t.Errorf("workers=%d: counter %s = %d, want %d",
					workers, name, got.Counters[name], base.Counters[name])
			}
		}
		if render != baseRender {
			t.Errorf("workers=%d: memoized Render differs from workers=1", workers)
		}
	}
}

package enumerate

import (
	"fmt"
	"testing"
)

// BenchmarkFalsifyDACThm71 times the Theorem 7.1 reference sweep (1116
// candidates) with cross-candidate memoization off and on, at one
// worker (isolating the engine from scheduling) and at the default
// worker count. The committed BENCH_experiments.json carries the
// headline rates; this benchmark exists for profiling and local
// comparison.
func BenchmarkFalsifyDACThm71(b *testing.B) {
	vectors := shardVectors(3)
	for _, memo := range []bool{false, true} {
		for _, workers := range []int{1, 0} {
			name := fmt.Sprintf("memo=%v/workers=%d", memo, workers)
			b.Run(name, func(b *testing.B) {
				f := shardFamily()
				for i := 0; i < b.N; i++ {
					rep, err := FalsifyDAC(f, 3, vectors, SweepOptions{DisableMemo: !memo, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					if rep.Candidates != 1116 {
						b.Fatalf("candidates = %d, want 1116", rep.Candidates)
					}
				}
			})
		}
	}
}

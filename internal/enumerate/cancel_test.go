package enumerate_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"setagree/internal/enumerate"
	"setagree/internal/obs"
)

// countEvents returns how many JSONL lines in buf carry the given
// event name.
func countEvents(buf *bytes.Buffer, event string) int {
	return strings.Count(buf.String(), `"event":"`+event+`"`)
}

// TestSweepCancellation cancels a sweep from its own progress callback
// and requires the PR 3/4 error-path contract: partial counters stay
// flushed, exactly one terminal event (sweep.error, not sweep.done) is
// emitted, and the returned error wraps the context's.
func TestSweepCancellation(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	vectors := binaryVectors(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := obs.NewSink()
	var events bytes.Buffer
	_, err := enumerate.FalsifyDAC(f, 3, vectors, enumerate.SweepOptions{
		Workers: 2,
		Obs:     sink,
		Events:  obs.NewEmitter(&events),
		Ctx:     ctx,
		OnProgress: func(p enumerate.Progress) {
			if p.Candidates >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := sink.Snapshot()
	if got := snap.Counters["sweep.errors"]; got != 1 {
		t.Errorf("sweep.errors = %d, want 1", got)
	}
	if got := snap.Counters["sweep.candidates"]; got < 3 {
		t.Errorf("sweep.candidates = %d, want >= 3 (partial counters must stay flushed)", got)
	}
	if n := countEvents(&events, "sweep.error"); n != 1 {
		t.Errorf("sweep.error events = %d, want exactly 1\n%s", n, events.String())
	}
	if n := countEvents(&events, "sweep.done"); n != 0 {
		t.Errorf("sweep.done emitted on a cancelled sweep:\n%s", events.String())
	}
}

// TestSweepPreCancelled starts a sweep under an already-cancelled
// context: no candidates are claimed, yet the terminal sweep.error
// event and counter still fire exactly once.
func TestSweepPreCancelled(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := obs.NewSink()
	var events bytes.Buffer
	_, err := enumerate.FalsifyDAC(f, 3, binaryVectors(3), enumerate.SweepOptions{
		Workers: 4,
		Obs:     sink,
		Events:  obs.NewEmitter(&events),
		Ctx:     ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := sink.Snapshot()
	if got := snap.Counters["sweep.candidates"]; got != 0 {
		t.Errorf("sweep.candidates = %d, want 0 under a pre-cancelled context", got)
	}
	if got := snap.Counters["sweep.errors"]; got != 1 {
		t.Errorf("sweep.errors = %d, want 1", got)
	}
	if n := countEvents(&events, "sweep.error"); n != 1 {
		t.Errorf("sweep.error events = %d, want exactly 1", n)
	}
}

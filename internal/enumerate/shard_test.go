package enumerate

import (
	"reflect"
	"testing"

	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// shardFamily is the Theorem 7.1 depth-1 family over {2-consensus,
// register} — the 1116-candidate sweep the checking cluster exists to
// partition (EXPERIMENTS E8).
func shardFamily() *Family {
	return &Family{
		Objects: []spec.Spec{objects.NewConsensus(2), objects.NewRegister()},
		Menu: []Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: ArgInput},
			{Obj: 1, Method: value.MethodRead},
		},
		Depth: 1,
		Actions: []Action{
			ActDecideInput, ActDecideLast, ActDecideFirst,
			ActDecideZero, ActDecideOne, ActRetry,
		},
	}
}

func shardVectors(n int) [][]value.Value {
	out := make([][]value.Value, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		v := make([]value.Value, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v[i] = 1
			}
		}
		out = append(out, v)
	}
	return out
}

// TestCheckRangePartitionMatchesFullSweep pins the cluster's core
// invariant: checking an uneven partition of the candidate space range
// by range yields exactly the aggregates, solver/inconclusive sets,
// and lowest-index sample failure of the one-shot FalsifyDAC sweep.
func TestCheckRangePartitionMatchesFullSweep(t *testing.T) {
	t.Parallel()
	fam := shardFamily()
	vectors := shardVectors(3)
	opts := SweepOptions{}

	full, err := FalsifyDAC(fam, 3, vectors, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Candidates != 1116 {
		t.Fatalf("full sweep candidates = %d, want 1116", full.Candidates)
	}

	p, err := PrepareDAC(fam, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Candidates() != full.Candidates || p.Pruned() != full.Pruned {
		t.Fatalf("prepared: %d candidates, %d pruned; full sweep: %d, %d",
			p.Candidates(), p.Pruned(), full.Candidates, full.Pruned)
	}

	// Deliberately uneven, unordered shard boundaries.
	bounds := [][2]int{{700, 1116}, {0, 1}, {1, 700}}
	var (
		states       int
		fallbacks    int
		solvers      []Assignment
		inconclusive []Inconclusive
		failure      *RangeFailure
	)
	merged := make(map[int]*RangeReport)
	for _, b := range bounds {
		rr, err := p.CheckRange(b[0], b[1], vectors, opts)
		if err != nil {
			t.Fatal(err)
		}
		merged[b[0]] = rr
	}
	// Fold in index order, as a coordinator merge does.
	for lo := 0; lo < p.Candidates(); {
		rr, ok := merged[lo]
		if !ok {
			t.Fatalf("no shard starting at %d", lo)
		}
		states += rr.States
		fallbacks += rr.SymmetryFallbacks
		for _, s := range rr.Solvers {
			solvers = append(solvers, s.Assignment)
		}
		for _, inc := range rr.Inconclusive {
			inconclusive = append(inconclusive, Inconclusive{Assignment: inc.Assignment, Inputs: inc.Inputs})
		}
		if failure == nil && rr.Failure != nil {
			failure = rr.Failure
		}
		lo = rr.Hi
	}

	if states != full.States {
		t.Errorf("merged states = %d, full sweep %d", states, full.States)
	}
	if fallbacks != full.SymmetryFallbacks {
		t.Errorf("merged symmetry fallbacks = %d, full sweep %d", fallbacks, full.SymmetryFallbacks)
	}
	if !reflect.DeepEqual(solvers, full.Solvers) {
		t.Errorf("merged solvers differ:\n%v\nvs\n%v", solvers, full.Solvers)
	}
	if !reflect.DeepEqual(inconclusive, full.Inconclusive) {
		t.Errorf("merged inconclusive differ:\n%v\nvs\n%v", inconclusive, full.Inconclusive)
	}
	switch {
	case failure == nil && full.SampleFailure != nil:
		t.Errorf("merged shards found no failure; full sweep did: %v", full.SampleFailure.Violation)
	case failure != nil && full.SampleFailure == nil:
		t.Errorf("merged shards found a failure; full sweep did not")
	case failure != nil:
		if !reflect.DeepEqual(failure.Assignment, full.SampleFailure.Assignment) ||
			!reflect.DeepEqual(failure.Inputs, full.SampleFailure.Inputs) ||
			failure.Violation != full.SampleFailure.Violation.Error() {
			t.Errorf("merged sample failure differs:\n%+v\nvs\n%+v", failure, full.SampleFailure)
		}
	}
}

// TestCheckRangeBounds pins range validation and the empty range.
func TestCheckRangeBounds(t *testing.T) {
	t.Parallel()
	fam := &Family{
		Objects: []spec.Spec{objects.NewRegister()},
		Menu:    []Invoke{{Obj: 0, Method: value.MethodRead}},
		Depth:   1,
		Actions: []Action{ActDecideInput},
	}
	p, err := PrepareSymmetric(fam, task.Consensus{N: 2}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CheckRange(-1, 0, nil, SweepOptions{}); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := p.CheckRange(0, p.Candidates()+1, nil, SweepOptions{}); err == nil {
		t.Error("hi beyond candidates accepted")
	}
	if _, err := p.CheckRange(1, 0, nil, SweepOptions{}); err == nil {
		t.Error("inverted range accepted")
	}
	rr, err := p.CheckRange(0, 0, nil, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.States != 0 || rr.Failure != nil || len(rr.Solvers) != 0 {
		t.Errorf("empty range not empty: %+v", rr)
	}
}

package enumerate

import (
	"errors"
	"fmt"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/sim"
	"setagree/internal/task"
	"setagree/internal/value"
)

// ErrInconclusive reports candidates whose state space exceeded the
// per-candidate limit, so the sweep could not refute them outright.
var ErrInconclusive = errors.New("enumerate: candidate exceeded state limit")

// SweepOptions tunes a falsification sweep.
type SweepOptions struct {
	// MaxStatesPerCandidate caps each model check (default 1 << 15).
	MaxStatesPerCandidate int
	// SoloSteps caps the solo prefilter run length (default 64).
	SoloSteps int
	// DisableSoloFilter skips the cheap solo prefilter and model-checks
	// every shape (the ablation knob: measures what the prefilter buys).
	DisableSoloFilter bool
}

func (o *SweepOptions) fill() {
	if o.MaxStatesPerCandidate <= 0 {
		o.MaxStatesPerCandidate = 1 << 15
	}
	if o.SoloSteps <= 0 {
		o.SoloSteps = 64
	}
}

// soloFilter cheaply rejects a shape by running its program solo (as
// process 1 of a 1-process system over fresh objects) on inputs 0 and
// 1. A surviving shape decides its own input in both solo runs — a
// necessary condition for any role of consensus-like tasks and n-DAC
// (Validity + Nontriviality + solo termination, cf. Claim 4.2.4's solo
// arguments).
func (f *Family) soloFilter(s Shape, opts SweepOptions) (bool, error) {
	prog, err := f.Program(s, "solo-probe")
	if err != nil {
		return false, err
	}
	for _, input := range []value.Value{0, 1} {
		sys := &explore.System{
			Programs: []*machine.Program{prog},
			Objects:  f.Objects,
			Inputs:   []value.Value{input},
		}
		res, err := sim.Run(sys, nil, sim.Solo(0), sim.Options{MaxSteps: opts.SoloSteps})
		if err != nil {
			return false, err
		}
		if !res.Completed {
			return false, nil // solo livelock
		}
		if res.Outcome.Aborted[0] {
			return false, nil // abort without any other process stepping
		}
		if !res.Outcome.Decided[0] || res.Outcome.Decisions[0] != input {
			return false, nil // solo validity (and no sentinel "decisions")
		}
	}
	return true, nil
}

// FalsifyDAC sweeps the family over the n-DAC task with n processes:
// process 1 is the distinguished process and runs a shape from the
// abort-enabled family; processes 2..n all run a common shape from the
// abort-free family. Every (p-shape, q-shape) pair surviving the solo
// prefilter is model-checked on every given input vector; a pair that
// passes all of them is recorded as a solver (the impossibility
// experiments expect none).
func FalsifyDAC(f *Family, n int, inputVectors [][]value.Value, opts SweepOptions) (*Report, error) {
	opts.fill()
	pFam := *f
	pFam.AllowAbort = true
	qFam := *f
	qFam.AllowAbort = false

	pShapes, err := survivors(&pFam, opts)
	if err != nil {
		return nil, err
	}
	qShapes, err := survivors(&qFam, opts)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Pruned: (len(pFam.Shapes()) - len(pShapes)) + (len(qFam.Shapes()) - len(qShapes)),
	}
	tsk := task.DAC{N: n, P: 0}
	for _, ps := range pShapes {
		pProg, err := pFam.Program(ps, "cand-p")
		if err != nil {
			return nil, err
		}
		for _, qs := range qShapes {
			qProg, err := qFam.Program(qs, "cand-q")
			if err != nil {
				return nil, err
			}
			progs := make([]*machine.Program, n)
			progs[0] = pProg
			for i := 1; i < n; i++ {
				progs[i] = qProg
			}
			rep.Candidates++
			asn := Assignment{Shapes: []Shape{ps, qs}}
			refuted, err := refute(rep, asn, progs, &pFam, tsk, inputVectors, opts)
			if err != nil {
				return nil, err
			}
			if !refuted {
				rep.Solvers = append(rep.Solvers, asn)
			}
		}
	}
	return rep, nil
}

// FalsifySymmetric sweeps the family over a symmetric task (consensus,
// k-set agreement): every process runs the same shape.
func FalsifySymmetric(f *Family, tsk task.Task, inputVectors [][]value.Value, opts SweepOptions) (*Report, error) {
	opts.fill()
	fam := *f
	fam.AllowAbort = false
	shapes, err := survivors(&fam, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{Pruned: len(fam.Shapes()) - len(shapes)}
	for _, s := range shapes {
		prog, err := fam.Program(s, "cand")
		if err != nil {
			return nil, err
		}
		progs := make([]*machine.Program, tsk.Procs())
		for i := range progs {
			progs[i] = prog
		}
		rep.Candidates++
		asn := Assignment{Shapes: []Shape{s}}
		refuted, err := refute(rep, asn, progs, &fam, tsk, inputVectors, opts)
		if err != nil {
			return nil, err
		}
		if !refuted {
			rep.Solvers = append(rep.Solvers, asn)
		}
	}
	return rep, nil
}

func survivors(f *Family, opts SweepOptions) ([]Shape, error) {
	shapes := f.Shapes()
	if opts.DisableSoloFilter {
		return shapes, nil
	}
	var out []Shape
	for _, s := range shapes {
		ok, err := f.soloFilter(s, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, s)
		}
	}
	return out, nil
}

// refute model-checks one assignment on every input vector, recording a
// sample failure. It reports whether the assignment was refuted.
func refute(rep *Report, asn Assignment, progs []*machine.Program, f *Family,
	tsk task.Task, inputVectors [][]value.Value, opts SweepOptions,
) (bool, error) {
	for _, in := range inputVectors {
		sys := &explore.System{Programs: progs, Objects: f.Objects, Inputs: in}
		r, err := explore.Check(sys, tsk, explore.Options{MaxStates: opts.MaxStatesPerCandidate})
		if errors.Is(err, explore.ErrStateLimit) {
			return false, fmt.Errorf("candidate %v on %v: %w", asn.Shapes, in, ErrInconclusive)
		}
		if err != nil {
			return false, err
		}
		if !r.Solved() {
			if rep.SampleFailure == nil {
				rep.SampleFailure = &Failure{
					Assignment: asn,
					Violation:  r.Violations[0],
					Inputs:     append([]value.Value(nil), in...),
				}
			}
			return true, nil
		}
	}
	return false, nil
}

package enumerate

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/obs"
	"setagree/internal/sim"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// SweepOptions tunes a falsification sweep.
type SweepOptions struct {
	// MaxStatesPerCandidate caps each model check (default 1 << 15).
	// A candidate that exceeds the cap on some input vector is recorded
	// in Report.Inconclusive (unless another vector refutes it); it does
	// not abort the sweep.
	MaxStatesPerCandidate int
	// SoloSteps caps the solo prefilter run length (default 64).
	SoloSteps int
	// DisableSoloFilter skips the cheap solo prefilter and model-checks
	// every shape (the ablation knob: measures what the prefilter buys).
	DisableSoloFilter bool
	// DisableMemo turns off cross-candidate memoization and prefix
	// forking (see memo.go), model-checking every candidate from
	// scratch. Reports are byte-identical either way — memoization
	// changes how verdicts are computed, never what they are — so this
	// is the equivalence-testing and benchmarking knob, not a
	// correctness one. Memoization is also bypassed transparently for
	// candidates outside the memoizer's soundness envelope and under
	// SymmetryValues reduction.
	DisableMemo bool
	// Workers is the number of goroutines model-checking candidates
	// (default runtime.GOMAXPROCS(0)). The Report is identical for every
	// worker count: results are aggregated by candidate index.
	Workers int
	// Symmetry, when not SymmetryOff, model-checks each candidate on the
	// symmetry-reduced configuration graph (see explore.Options.Symmetry;
	// verdicts are identical to unreduced checks). A candidate whose
	// system rejects the reduction — explore.ErrNotSymmetric or
	// explore.ErrSymmetryUnsupported — is transparently re-checked
	// unreduced and counted in Report.SymmetryFallbacks and the
	// sweep.symmetry_fallbacks metric; it is not an error. All other
	// check errors still abort the sweep.
	Symmetry explore.Symmetry
	// OnProgress, when set, receives a snapshot after each candidate
	// completes. Calls are serialized and counters are nondecreasing,
	// but with Workers > 1 the completion order is not the candidate
	// order. The callback must not call back into the sweep.
	//
	// OnProgress is implemented on top of the same per-candidate
	// accounting that feeds Obs: both observe every completed candidate
	// exactly once and agree with the final Report.
	OnProgress func(Progress)
	// Obs, when set, receives the sweep.* run metrics: candidates,
	// pruned, inconclusive, refuted, solvers, and states counters (all
	// sums of work done, so identical sweeps yield identical values at
	// any Workers setting), plus the sweep.candidate timer. The sink is
	// also threaded into every candidate's model check, accumulating
	// the explore.* counters across the whole sweep. Nil disables
	// metrics at zero cost.
	//
	// With memoization on, the verdict counters and sweep.states stay
	// schedule-independent, but sweep.memo_hits, sweep.dedup_candidates,
	// sweep.fork_states_saved, the sweep.candidate timer, and the
	// explore.* counters depend on which canonical-equal candidate a
	// worker reached first; set DisableMemo for fully deterministic
	// snapshots.
	Obs *obs.Sink
	// Events, when set, receives one sweep.candidate JSONL event per
	// checked candidate (index, outcome, states, elapsed_ns; emitted in
	// completion order, which under Workers > 1 is not candidate order)
	// and exactly one terminal event: sweep.done on success, or
	// sweep.error (with an "error" field) when the sweep failed or was
	// cancelled. Nil disables events.
	Events *obs.Emitter
	// Ctx, when set, cancels the sweep cooperatively: workers stop
	// claiming candidates, in-flight model checks stop at their next
	// BFS level barrier (Ctx is threaded into each explore.Check),
	// counters for completed candidates stay flushed, one sweep.error
	// terminal event is emitted, and the sweep returns an error
	// satisfying errors.Is(err, ctx.Err()).
	Ctx context.Context
}

func (o *SweepOptions) fill() {
	if o.MaxStatesPerCandidate <= 0 {
		o.MaxStatesPerCandidate = 1 << 15
	}
	if o.SoloSteps <= 0 {
		o.SoloSteps = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Progress is a live snapshot of a running sweep, delivered to
// SweepOptions.OnProgress.
type Progress struct {
	// Candidates is the number of candidates fully checked so far.
	Candidates int
	// Pruned is the number of shapes rejected by the solo prefilter
	// (fixed before candidate checking starts).
	Pruned int
	// Inconclusive is the number of candidates whose model check hit the
	// state limit so far.
	Inconclusive int
	// States is the total number of configurations explored across all
	// model checks so far (partial explorations included).
	States int
}

// soloFilter cheaply rejects a shape by running its program solo (as
// process 0 of a 1-process system over fresh objects) on inputs 0 and
// 1. A surviving shape decides its own input in both solo runs — a
// necessary condition for any role of consensus-like tasks and n-DAC
// (Validity + Nontriviality + solo termination, cf. Claim 4.2.4's solo
// arguments).
func (f *Family) soloFilter(s Shape, opts SweepOptions) (bool, error) {
	prog, err := f.Program(s, "solo-probe")
	if err != nil {
		return false, err
	}
	for _, input := range []value.Value{0, 1} {
		sys := &explore.System{
			Programs: []*machine.Program{prog},
			Objects:  f.Objects,
			Inputs:   []value.Value{input},
		}
		res, err := sim.Run(sys, nil, sim.Solo(0), sim.Options{MaxSteps: opts.SoloSteps})
		if err != nil {
			return false, err
		}
		if !res.Completed {
			return false, nil // solo livelock
		}
		if res.Outcome.Aborted[0] {
			return false, nil // abort without any other process stepping
		}
		if !res.Outcome.Decided[0] || res.Outcome.Decisions[0] != input {
			return false, nil // solo validity (and no sentinel "decisions")
		}
	}
	return true, nil
}

// FalsifyDAC sweeps the family over the n-DAC task with n processes:
// process 0 is the distinguished process and runs a shape from the
// abort-enabled family; processes 1..n-1 all run a common shape from
// the abort-free family. Every (p-shape, q-shape) pair surviving the
// solo prefilter is model-checked on every given input vector; a pair
// that passes all of them is recorded as a solver (the impossibility
// experiments expect none), and a pair whose check blows the state
// limit is recorded as inconclusive.
func FalsifyDAC(f *Family, n int, inputVectors [][]value.Value, opts SweepOptions) (*Report, error) {
	opts.fill()
	p, err := PrepareDAC(f, n, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{Pruned: p.pruned}
	if err := sweep(rep, p, inputVectors, opts); err != nil {
		return nil, err
	}
	return rep, nil
}

// FalsifySymmetric sweeps the family over a symmetric task (consensus,
// k-set agreement): every process runs the same shape.
func FalsifySymmetric(f *Family, tsk task.Task, inputVectors [][]value.Value, opts SweepOptions) (*Report, error) {
	opts.fill()
	p, err := PrepareSymmetric(f, tsk, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{Pruned: p.pruned}
	if err := sweep(rep, p, inputVectors, opts); err != nil {
		return nil, err
	}
	return rep, nil
}

func survivors(f *Family, opts SweepOptions) ([]Shape, error) {
	shapes := f.Shapes()
	if opts.DisableSoloFilter {
		return shapes, nil
	}
	var out []Shape
	for _, s := range shapes {
		ok, err := f.soloFilter(s, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, s)
		}
	}
	return out, nil
}

// candidate is one sweep job: a protocol assignment with its per-process
// programs materialized.
type candidate struct {
	asn   Assignment
	progs []*machine.Program
}

// outcome classifies one checked candidate. Exactly one of failure,
// inconclusive, or solver is set unless err is.
type outcome struct {
	failure      *Failure
	inconclusive *Inconclusive
	solver       bool
	states       int
	symFallback  bool
	err          error
	// fullHit marks a candidate served entirely from the memo table —
	// no exploration ran, so its sweep.candidate timer sample is
	// skipped (a near-zero duration would skew the latency profile).
	fullHit bool
	// vioPending marks a memo-served refutation whose failure carries a
	// nil Violation; vioMode is the symmetry mode its re-derivation
	// must run under (see materializeViolation).
	vioPending bool
	vioMode    explore.Symmetry
}

// memoStats is a point-in-time copy of a run's memoization counters,
// carried into the terminal sweep event.
type memoStats struct {
	memoHits        int64
	dedupCandidates int64
	forkStatesSaved int64
}

func (rs *runState) memoStats() memoStats {
	return memoStats{
		memoHits:        rs.stats.memoHits.Load(),
		dedupCandidates: rs.stats.dedupCandidates.Load(),
		forkStatesSaved: rs.stats.forkStatesSaved.Load(),
	}
}

// sweep fans the candidates out to opts.Workers goroutines and folds
// the outcomes into rep in candidate-index order, so the Report is
// byte-identical for every worker count. The first hard error cancels
// the remaining queue; the lowest-indexed recorded error is returned.
func sweep(rep *Report, p *Prepared, inputVectors [][]value.Value, opts SweepOptions) error {
	opts.Obs.Counter("sweep.sweeps").Inc()
	opts.Obs.Counter("sweep.pruned").Add(int64(rep.Pruned))
	outcomes, stats, err := runCandidates(p, 0, len(p.cands), inputVectors, opts)
	if err != nil {
		return err
	}
	rep.Candidates = len(p.cands)
	var sample *outcome
	sampleIdx := -1
	for i := range outcomes {
		o := &outcomes[i]
		rep.States += o.states
		if o.symFallback {
			rep.SymmetryFallbacks++
		}
		switch {
		case o.failure != nil:
			if rep.SampleFailure == nil {
				rep.SampleFailure = o.failure
				sample, sampleIdx = o, i
			}
		case o.inconclusive != nil:
			rep.Inconclusive = append(rep.Inconclusive, *o.inconclusive)
		case o.solver:
			rep.Solvers = append(rep.Solvers, p.cands[i].asn)
		}
	}
	if sample != nil && sample.vioPending {
		if err := p.materializeViolation(p.cands[sampleIdx], sample, opts); err != nil {
			return terminalError(opts, stats, err)
		}
	}
	if opts.Events != nil {
		opts.Events.Emit("sweep.done", obs.Fields{
			"candidates":         rep.Candidates,
			"pruned":             rep.Pruned,
			"states":             rep.States,
			"inconclusive":       len(rep.Inconclusive),
			"solvers":            len(rep.Solvers),
			"symmetry_fallbacks": rep.SymmetryFallbacks,
			"memo_hits":          stats.memoHits,
			"dedup_candidates":   stats.dedupCandidates,
			"fork_states_saved":  stats.forkStatesSaved,
		})
	}
	return nil
}

// terminalError accounts a sweep-level failure and emits the single
// sweep.error terminal event, preserving the one-terminal-event
// contract for errors discovered after runCandidates returned.
func terminalError(opts SweepOptions, stats memoStats, err error) error {
	opts.Obs.Counter("sweep.errors").Inc()
	if opts.Events != nil {
		opts.Events.Emit("sweep.error", obs.Fields{
			"error":             err.Error(),
			"memo_hits":         stats.memoHits,
			"dedup_candidates":  stats.dedupCandidates,
			"fork_states_saved": stats.forkStatesSaved,
		})
	}
	return err
}

// runCandidates is the worker-pool core shared by full sweeps and
// shard checks: it fans candidates [lo, hi) out to opts.Workers
// goroutines and returns the per-candidate outcomes indexed by
// position. Workers claim candidates in the runState's order — prefix-
// grouped when the trie engine is on — but outcomes always land at
// their candidate's position, so folding is order-blind. Metric
// handles resolve once per call; a nil Obs hands out nil (no-op)
// handles, so the uninstrumented path pays nothing. Per-candidate
// sweep.candidate events carry lo+i, so a shard's events use global
// candidate indices. On a hard error or cancellation it emits one
// sweep.error terminal event and returns the lowest-indexed error (the
// terminal-event contract matches explore's: callers that finish
// normally emit the single sweep.done themselves).
func runCandidates(p *Prepared, lo, hi int, inputVectors [][]value.Value, opts SweepOptions,
) ([]outcome, memoStats, error) {
	rs := newRunState(p, lo, hi, inputVectors, opts)
	cands := rs.cands
	outcomes := make([]outcome, len(cands))
	workers := opts.Workers
	if workers > len(cands) {
		workers = len(cands)
	}

	var (
		candCounter     = opts.Obs.Counter("sweep.candidates")
		statesCounter   = opts.Obs.Counter("sweep.states")
		incCounter      = opts.Obs.Counter("sweep.inconclusive")
		refutedCounter  = opts.Obs.Counter("sweep.refuted")
		solverCounter   = opts.Obs.Counter("sweep.solvers")
		fallbackCounter = opts.Obs.Counter("sweep.symmetry_fallbacks")
		candTimer       = opts.Obs.Timer("sweep.candidate")
		timed           = opts.Obs != nil || opts.Events != nil
	)

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		prog   = Progress{Pruned: p.pruned}
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1))
				if k >= len(cands) || failed.Load() {
					return
				}
				if ctx := opts.Ctx; ctx != nil && ctx.Err() != nil {
					return
				}
				i := rs.order[k]
				var begin time.Time
				if timed {
					begin = time.Now()
				}
				out := rs.check(i)
				outcomes[i] = out
				if out.err != nil {
					failed.Store(true)
					return
				}
				candCounter.Inc()
				statesCounter.Add(int64(out.states))
				if out.symFallback {
					fallbackCounter.Inc()
				}
				if out.fullHit {
					rs.stats.dedupCandidates.Add(1)
					rs.dedupCounter.Inc()
				}
				verdict := "refuted"
				switch {
				case out.inconclusive != nil:
					incCounter.Inc()
					verdict = "inconclusive"
				case out.solver:
					solverCounter.Inc()
					verdict = "solver"
				default:
					refutedCounter.Inc()
				}
				if timed {
					elapsed := time.Since(begin)
					// Memo-hit candidates ran no exploration; recording
					// their near-zero durations would collapse the timer's
					// percentiles, so only explored candidates sample it.
					if !out.fullHit {
						candTimer.Observe(elapsed)
					}
					if opts.Events != nil {
						opts.Events.Emit("sweep.candidate", obs.Fields{
							"index":      lo + i,
							"outcome":    verdict,
							"states":     out.states,
							"elapsed_ns": elapsed.Nanoseconds(),
							"memo":       out.fullHit,
						})
					}
				}
				if opts.OnProgress != nil {
					mu.Lock()
					prog.Candidates++
					if out.inconclusive != nil {
						prog.Inconclusive++
					}
					prog.States += out.states
					opts.OnProgress(prog)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Counters for completed candidates were flushed live above, so a
	// failed or cancelled run still reports its partial work.
	fail := func(err error) ([]outcome, memoStats, error) {
		return nil, rs.memoStats(), terminalError(opts, rs.memoStats(), err)
	}
	for i := range outcomes {
		if err := outcomes[i].err; err != nil {
			return fail(err)
		}
	}
	if ctx := opts.Ctx; ctx != nil && ctx.Err() != nil {
		return fail(fmt.Errorf("enumerate: sweep interrupted: %w", ctx.Err()))
	}
	return outcomes, rs.memoStats(), nil
}

// checkCandidate model-checks one assignment on every input vector.
// A vector that refutes the candidate settles it; a vector that blows
// the state limit marks it inconclusive but later vectors still get a
// chance to refute it (a refutation on any vector is conclusive).
func checkCandidate(c candidate, objs []spec.Spec, tsk task.Task,
	inputVectors [][]value.Value, opts SweepOptions,
) outcome {
	var out outcome
	mode := opts.Symmetry
	for _, in := range inputVectors {
		sys := &explore.System{Programs: c.progs, Objects: objs, Inputs: in}
		// The sweep's sink (if any) accumulates the explore.* counters
		// across every candidate check; per-check events stay off (one
		// sweep.candidate event per candidate is emitted by the sweep
		// loop instead, keeping event volume proportional to candidates
		// rather than model-checker states).
		r, err := explore.Check(sys, tsk, explore.Options{
			MaxStates:      opts.MaxStatesPerCandidate,
			Symmetry:       mode,
			Obs:            opts.Obs,
			HeartbeatEvery: -1,
			Ctx:            opts.Ctx,
		})
		if mode != explore.SymmetryOff &&
			(errors.Is(err, explore.ErrNotSymmetric) || errors.Is(err, explore.ErrSymmetryUnsupported)) {
			// This candidate's system admits no reduction; re-check it (and
			// its remaining vectors) unreduced. The verdict is exact either
			// way, so the fallback is recorded rather than fatal.
			mode = explore.SymmetryOff
			out.symFallback = true
			r, err = explore.Check(sys, tsk, explore.Options{
				MaxStates:      opts.MaxStatesPerCandidate,
				Obs:            opts.Obs,
				HeartbeatEvery: -1,
				Ctx:            opts.Ctx,
			})
		}
		if errors.Is(err, explore.ErrStateLimit) {
			out.states += r.States
			if out.inconclusive == nil {
				out.inconclusive = &Inconclusive{
					Assignment: c.asn,
					Inputs:     append([]value.Value(nil), in...),
				}
			}
			continue
		}
		if err != nil {
			out.err = fmt.Errorf("candidate %v on %v: %w", c.asn.Shapes, in, err)
			return out
		}
		out.states += r.States
		if !r.Solved() {
			out.failure = &Failure{
				Assignment: c.asn,
				Violation:  r.Violations[0],
				Inputs:     append([]value.Value(nil), in...),
			}
			out.inconclusive = nil
			return out
		}
	}
	out.solver = out.inconclusive == nil
	return out
}

package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeSample(t *testing.T, dir string) (string, Header, []byte) {
	t.Helper()
	path := filepath.Join(dir, "sample.ckpt")
	h := Header{Kind: "test.payload", Version: 3, Fingerprint: 0xdeadbeefcafef00d}
	payload := []byte("hello durable world")
	if err := Write(path, h, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path, h, payload
}

func TestRoundTrip(t *testing.T) {
	path, h, payload := writeSample(t, t.TempDir())
	version, got, err := Read(path, h.Kind, h.Version, h.Fingerprint)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if version != h.Version {
		t.Errorf("version = %d, want %d", version, h.Version)
	}
	if string(got) != string(payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
	peek, err := Peek(path)
	if err != nil {
		t.Fatalf("Peek: %v", err)
	}
	if peek != h {
		t.Errorf("Peek = %+v, want %+v", peek, h)
	}
}

func TestWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path, h, payload := writeSample(t, dir)
	// Overwrite with a second snapshot; the temp file must be gone and
	// the content replaced.
	if err := Write(path, h, []byte("second")); err != nil {
		t.Fatalf("second Write: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after overwrite, want 1 (no temp leftovers)", len(entries))
	}
	_, got, err := Read(path, h.Kind, h.Version, h.Fingerprint)
	if err != nil {
		t.Fatalf("Read after overwrite: %v", err)
	}
	if string(got) == string(payload) {
		t.Error("overwrite did not replace the payload")
	}
}

// TestRejections pins the typed refusal for every corruption and
// mismatch class a resume must reject before trusting payload bytes.
func TestRejections(t *testing.T) {
	dir := t.TempDir()
	path, h, _ := writeSample(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func([]byte) []byte) string {
		p := filepath.Join(dir, name)
		buf := append([]byte(nil), raw...)
		if err := os.WriteFile(p, f(buf), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name string
		path string
		kind string
		ver  uint64
		fp   uint64
		want error
	}{
		{"bad magic", mutate("magic.ckpt", func(b []byte) []byte { b[0] = 'X'; return b }), h.Kind, h.Version, h.Fingerprint, ErrBadMagic},
		{"truncated", mutate("trunc.ckpt", func(b []byte) []byte { return b[:len(b)-5] }), h.Kind, h.Version, h.Fingerprint, ErrCorrupt},
		{"trailing garbage", mutate("trail.ckpt", func(b []byte) []byte { return append(b, 0xEE, 0xEE) }), h.Kind, h.Version, h.Fingerprint, ErrCorrupt},
		{"bit flip", mutate("flip.ckpt", func(b []byte) []byte { b[len(b)-7] ^= 0x40; return b }), h.Kind, h.Version, h.Fingerprint, ErrCorrupt},
		{"tiny file", mutate("tiny.ckpt", func(b []byte) []byte { return b[:3] }), h.Kind, h.Version, h.Fingerprint, ErrCorrupt},
		{"wrong kind", path, "other.engine", h.Version, h.Fingerprint, ErrKind},
		{"version skew", path, h.Kind, h.Version - 1, h.Fingerprint, ErrVersion},
		{"fingerprint", path, h.Kind, h.Version, h.Fingerprint + 1, ErrFingerprint},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Read(tc.path, tc.kind, tc.ver, tc.fp)
			if !errors.Is(err, tc.want) {
				t.Errorf("Read = %v, want %v", err, tc.want)
			}
		})
	}

	if _, err := Peek(mutate("peek-flip.ckpt", func(b []byte) []byte { b[9] ^= 1; return b })); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Peek on corrupt = %v, want ErrCorrupt", err)
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Varint(-77)
	e.Int(42)
	e.Byte(0xAB)
	e.Bytes([]byte("xyz"))
	d := NewDec(e.Buf)
	if v := d.Uvarint(); v != 0 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Uvarint(); v != 1<<40 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Varint(); v != -77 {
		t.Errorf("Varint = %d", v)
	}
	if v := d.Int(); v != 42 {
		t.Errorf("Int = %d", v)
	}
	if v := d.Byte(); v != 0xAB {
		t.Errorf("Byte = %x", v)
	}
	if v := d.Bytes(int(d.Uvarint())); string(v) != "xyz" {
		t.Errorf("Bytes = %q", v)
	}
	if d.Err() != nil || d.Len() != 0 {
		t.Errorf("err=%v len=%d", d.Err(), d.Len())
	}
}

// TestDecLatchesErrors pins the straight-line decode contract: the
// first malformed read latches, every later read is a zero value.
func TestDecLatchesErrors(t *testing.T) {
	d := NewDec([]byte{0x80}) // unterminated varint
	if v := d.Uvarint(); v != 0 {
		t.Errorf("Uvarint on junk = %d", v)
	}
	if d.Err() == nil {
		t.Fatal("no latched error")
	}
	if v := d.Byte(); v != 0 {
		t.Errorf("Byte after latch = %d", v)
	}
	if b := d.Bytes(1); b != nil {
		t.Errorf("Bytes after latch = %v", b)
	}
	d2 := NewDec([]byte{5})
	if b := d2.Bytes(int(d2.Uvarint())); b != nil || d2.Err() == nil {
		t.Errorf("oversized Bytes: b=%v err=%v", b, d2.Err())
	}
}

func TestFingerprintSeparation(t *testing.T) {
	a := NewFingerprint().String("ab").String("c")
	b := NewFingerprint().String("a").String("bc")
	if a == b {
		t.Error("length-prefixed string folding collided across field boundaries")
	}
	if NewFingerprint().Int(-1) == NewFingerprint().Int(1) {
		t.Error("Int folding collided")
	}
}

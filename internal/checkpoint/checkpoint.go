// Package checkpoint is the repository's durable-snapshot container: a
// versioned, self-delimiting, checksummed on-disk format that the
// long-running engines (the explorer's level-synchronized BFS first
// among them) write at safe boundaries and restore from after a crash,
// a cancellation, or a daemon restart.
//
// The container deliberately knows nothing about what it carries. An
// engine owns its payload encoding (internal/explore encodes its
// interned configuration table with the same binary AppendKey varint
// vocabulary it interns by); this package owns everything a resume must
// be able to reject *before* trusting a single payload byte:
//
//   - a fixed magic so arbitrary files fail fast (ErrBadMagic);
//   - a kind string so one engine cannot load another's snapshot;
//   - a payload schema version per kind (ErrVersion on skew);
//   - a caller-supplied 64-bit fingerprint binding the snapshot to the
//     exact inputs it was taken from (ErrFingerprint on mismatch);
//   - a CRC-32C over the whole file (ErrCorrupt on damage), with the
//     payload length encoded up front so truncation is detected even
//     when the truncated prefix happens to checksum correctly.
//
// Writes are atomic: the snapshot is written to a temporary file in the
// destination directory, synced, and renamed over the target, so a
// crash mid-write leaves either the previous snapshot or none — never a
// torn one. Readers therefore never need recovery logic beyond the
// typed rejections above.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// Snapshot rejection reasons, wrapped by Read's errors so callers can
// errors.Is-classify a refused resume.
var (
	// ErrBadMagic reports that the file is not a checkpoint at all.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrCorrupt reports a truncated or bit-damaged checkpoint.
	ErrCorrupt = errors.New("checkpoint: corrupt or truncated")
	// ErrKind reports a checkpoint written by a different engine.
	ErrKind = errors.New("checkpoint: wrong kind")
	// ErrVersion reports a payload schema the reader does not speak.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrFingerprint reports a snapshot taken from different inputs
	// than the resume was asked to continue.
	ErrFingerprint = errors.New("checkpoint: fingerprint mismatch")
	// ErrSync reports that a written snapshot could not be made
	// durable: the data fsync, or the parent-directory fsync that
	// commits the rename, failed. The file may be visible but must not
	// be assumed to survive a crash.
	ErrSync = errors.New("checkpoint: snapshot not durable")
)

// magic opens every checkpoint file. The trailing digit is the
// *container* revision; payload schemas version themselves per kind.
var magic = [8]byte{'D', 'A', 'C', 'C', 'K', 'P', 'T', '1'}

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header identifies a snapshot independent of its payload.
type Header struct {
	// Kind names the owning engine's payload schema, e.g.
	// "explore.graph". Read rejects mismatches with ErrKind.
	Kind string
	// Version is the payload schema version. Read rejects versions
	// above the reader's maximum with ErrVersion.
	Version uint64
	// Fingerprint binds the snapshot to the inputs it was taken from
	// (see Fingerprinter). Read rejects mismatches with ErrFingerprint.
	Fingerprint uint64
}

// Write atomically persists a snapshot to path: temp file in the same
// directory, fsync, rename. The previous file at path (if any) remains
// intact until the rename commits.
func Write(path string, h Header, payload []byte) error {
	return WriteV(path, h, [][]byte{payload})
}

// WriteV is Write with the payload supplied as a vector of sections,
// concatenated on disk exactly as Write would store their
// concatenation. Engines that maintain their payload as append-only
// section buffers (the explorer's spanning-tree and edge-list caches)
// hand those buffers over by reference instead of assembling one
// contiguous payload — snapshots are rewritten at every checkpoint, so
// an O(payload) assembly copy per snapshot would rival the write cost
// of large graphs. Sections must not be mutated until WriteV returns.
func WriteV(path string, h Header, sections [][]byte) error {
	// The header and trailer are built in a small scratch buffer and the
	// sections are written as-is, with the checksum streamed across all.
	total := 0
	for _, s := range sections {
		total += len(s)
	}
	hdr := make([]byte, 0, len(magic)+len(h.Kind)+32)
	hdr = append(hdr, magic[:]...)
	hdr = binary.AppendUvarint(hdr, uint64(len(h.Kind)))
	hdr = append(hdr, h.Kind...)
	hdr = binary.AppendUvarint(hdr, h.Version)
	hdr = binary.LittleEndian.AppendUint64(hdr, h.Fingerprint)
	hdr = binary.AppendUvarint(hdr, uint64(total))
	crc := crc32.Update(0, castagnoli, hdr)
	for _, s := range sections {
		crc = crc32.Update(crc, castagnoli, s)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(hdr); err != nil {
		return cleanup(err)
	}
	for _, s := range sections {
		if _, err := tmp.Write(s); err != nil {
			return cleanup(err)
		}
	}
	if _, err := tmp.Write(trailer[:]); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync %s: %v: %w", tmpName, err, ErrSync)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// The rename is only durable once the directory entry itself is on
	// disk: without this fsync a crash right after the rename can lose
	// the snapshot (or resurrect the old one) on journaling filesystems.
	return syncDir(dir)
}

// syncDir fsyncs the directory that just received a renamed snapshot.
// Filesystems that reject fsync on a directory handle (EINVAL/ENOTSUP)
// are tolerated — the rename is atomic there regardless; real failures
// are reported wrapping ErrSync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir %s: %v: %w", dir, err, ErrSync)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("checkpoint: sync dir %s: %v: %w", dir, err, ErrSync)
	}
	return nil
}

// creader streams a snapshot file through an incremental CRC-32C while
// tracking the bytes consumed. It implements io.ByteReader so varints
// decode straight off the stream.
type creader struct {
	r   *bufio.Reader
	crc uint32
	n   int64
	tmp [1]byte
}

func (c *creader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	c.tmp[0] = b
	c.crc = crc32.Update(c.crc, castagnoli, c.tmp[:1])
	c.n++
	return b, nil
}

func (c *creader) readFull(p []byte) error {
	if _, err := io.ReadFull(c.r, p); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, castagnoli, p)
	c.n += int64(len(p))
	return nil
}

func (c *creader) uint64() (uint64, error) {
	var b [8]byte
	if err := c.readFull(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// load streams the snapshot at path: magic and header are parsed
// incrementally, the declared payload length is cross-checked against
// the file size before any payload allocation (the container is
// header|payload|crc and nothing else, so the sizes must match
// exactly), and the CRC-32C is folded in as bytes arrive. With
// wantPayload false the payload is streamed through the checksum in
// bounded chunks and never retained, so integrity-only reads (Peek) run
// at constant memory no matter how large the snapshot is.
func load(path string, wantPayload bool) (Header, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return Header{}, nil, fmt.Errorf("checkpoint: %w", err)
	}
	size := info.Size()
	if size < int64(len(magic))+4 {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: %d bytes: %w", path, size, ErrCorrupt)
	}
	cr := &creader{r: bufio.NewReader(f)}
	var mag [8]byte
	if err := cr.readFull(mag[:]); err != nil {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: %w", path, ErrCorrupt)
	}
	if mag != magic {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: %w", path, ErrBadMagic)
	}
	badHeader := func() (Header, []byte, error) {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: header: %w", path, ErrCorrupt)
	}
	kindLen, err := binary.ReadUvarint(cr)
	if err != nil || kindLen > uint64(size) {
		return badHeader()
	}
	kind := make([]byte, kindLen)
	if err := cr.readFull(kind); err != nil {
		return badHeader()
	}
	h := Header{Kind: string(kind)}
	if h.Version, err = binary.ReadUvarint(cr); err != nil {
		return badHeader()
	}
	if h.Fingerprint, err = cr.uint64(); err != nil {
		return badHeader()
	}
	plen, err := binary.ReadUvarint(cr)
	if err != nil {
		return badHeader()
	}
	if rest := size - cr.n - 4; rest < 0 || plen != uint64(rest) {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: payload length %d, file holds %d: %w",
			path, plen, size-cr.n-4, ErrCorrupt)
	}
	var payload []byte
	if wantPayload {
		payload = make([]byte, plen)
		if err := cr.readFull(payload); err != nil {
			return Header{}, nil, fmt.Errorf("checkpoint: %s: %w", path, ErrCorrupt)
		}
	} else {
		buf := make([]byte, min(plen, 64<<10))
		for rest := plen; rest > 0; {
			n := min(rest, uint64(len(buf)))
			if err := cr.readFull(buf[:n]); err != nil {
				return Header{}, nil, fmt.Errorf("checkpoint: %s: %w", path, ErrCorrupt)
			}
			rest -= n
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(cr.r, trailer[:]); err != nil {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: %w", path, ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(trailer[:]) != cr.crc {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: checksum mismatch: %w", path, ErrCorrupt)
	}
	return h, payload, nil
}

// Read loads and validates the snapshot at path. kind must match the
// stored kind exactly; maxVersion is the newest payload schema the
// caller can decode (older versions are the caller's concern — the
// stored version is returned). A fingerprint mismatch is reported with
// ErrFingerprint; pass the caller's recomputed fingerprint.
func Read(path, kind string, maxVersion, fingerprint uint64) (version uint64, payload []byte, err error) {
	h, payload, err := ReadUnverified(path, kind, maxVersion)
	if err != nil {
		return 0, nil, err
	}
	if h.Fingerprint != fingerprint {
		return 0, nil, fmt.Errorf("checkpoint: %s: fingerprint %016x, want %016x: %w", path, h.Fingerprint, fingerprint, ErrFingerprint)
	}
	return h.Version, payload, nil
}

// ReadUnverified is Read without the fingerprint comparison, for
// callers inspecting a snapshot before the inputs it binds to are
// reconstructed (status displays, pre-resume peeks). Integrity, kind,
// and version are still enforced; resumes must go through Read.
func ReadUnverified(path, kind string, maxVersion uint64) (Header, []byte, error) {
	h, payload, err := load(path, true)
	if err != nil {
		return Header{}, nil, err
	}
	if h.Kind != kind {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: kind %q, want %q: %w", path, h.Kind, kind, ErrKind)
	}
	if h.Version > maxVersion {
		return Header{}, nil, fmt.Errorf("checkpoint: %s: version %d, reader speaks <= %d: %w", path, h.Version, maxVersion, ErrVersion)
	}
	return h, payload, nil
}

// Peek reads only the header of the snapshot at path, validating magic
// and checksum but not kind, version, or fingerprint — for status
// displays and pre-resume inspection. The payload is streamed through
// the checksum without being retained, so Peek runs at constant memory
// on snapshots of any size.
func Peek(path string) (Header, error) {
	h, _, err := load(path, false)
	return h, err
}

// Enc accumulates a payload with the varint vocabulary the engines'
// binary keys already use. The zero value is ready; read the bytes off
// Buf when done.
type Enc struct {
	// Buf is the accumulated payload.
	Buf []byte
}

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) { e.Buf = binary.AppendUvarint(e.Buf, v) }

// Varint appends a signed (zig-zag) varint.
func (e *Enc) Varint(v int64) { e.Buf = binary.AppendVarint(e.Buf, v) }

// Int appends an int as a signed varint.
func (e *Enc) Int(v int) { e.Varint(int64(v)) }

// Byte appends one raw byte.
func (e *Enc) Byte(b byte) { e.Buf = append(e.Buf, b) }

// Bytes appends raw bytes length-prefixed with a uvarint.
func (e *Enc) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.Buf = append(e.Buf, b...)
}

// Dec decodes a payload written with Enc. Errors latch: after the first
// malformed read every subsequent read returns zero values, so decoders
// are written straight-line and check Err once at the end.
type Dec struct {
	buf []byte
	err error
}

// NewDec returns a decoder over buf (which it does not copy).
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *Dec) Len() int { return len(d.buf) }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
	d.buf = nil
}

// Uvarint reads an unsigned varint (0 after an error).
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Varint reads a signed varint (0 after an error).
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Int reads a signed varint as an int.
func (d *Dec) Int() int { return int(d.Varint()) }

// Byte reads one raw byte (0 after an error).
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

// Bytes reads n raw bytes without copying (nil after an error). A
// negative or oversized n latches ErrCorrupt.
func (d *Dec) Bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

// Uint64 reads a fixed-width little-endian uint64 (0 after an error).
func (d *Dec) Uint64() uint64 {
	b := d.Bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Fingerprint is a tiny FNV-1a 64 accumulator for building the input
// fingerprints stored in headers. Start from NewFingerprint and fold in
// every input that must match for a resume to be sound.
type Fingerprint uint64

// NewFingerprint returns the FNV-1a offset basis.
func NewFingerprint() Fingerprint { return 0xcbf29ce484222325 }

const fnvPrime = 0x00000100000001b3

// Write folds raw bytes into the fingerprint.
func (f Fingerprint) Write(b []byte) Fingerprint {
	for _, c := range b {
		f ^= Fingerprint(c)
		f *= fnvPrime
	}
	return f
}

// String folds a string (length-prefixed, so concatenations cannot
// collide across field boundaries).
func (f Fingerprint) String(s string) Fingerprint {
	f = f.Uint64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		f ^= Fingerprint(s[i])
		f *= fnvPrime
	}
	return f
}

// Uint64 folds a fixed-width integer.
func (f Fingerprint) Uint64(v uint64) Fingerprint {
	for i := 0; i < 8; i++ {
		f ^= Fingerprint(byte(v >> (8 * i)))
		f *= fnvPrime
	}
	return f
}

// Int folds an int.
func (f Fingerprint) Int(v int) Fingerprint { return f.Uint64(uint64(int64(v))) }

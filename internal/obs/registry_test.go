package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRegistryGather: live sinks are read in place, released sinks
// keep counting through the retired accumulator, and the merge rules
// are counters-sum / gauges-max / timers-sum / histograms-bucketwise.
func TestRegistryGather(t *testing.T) {
	t.Parallel()
	r := NewRegistry()

	a := r.Attach()
	a.Counter("explore.states").Add(100)
	a.Gauge("explore.frontier_max").SetMax(50)
	a.Timer("t").Observe(time.Millisecond)
	a.Histogram("explore.level_ns").Observe(1000)

	b := r.Attach()
	b.Counter("explore.states").Add(25)
	b.Gauge("explore.frontier_max").SetMax(80)
	b.Timer("t").Observe(2 * time.Millisecond)
	b.Histogram("explore.level_ns").Observe(2000)

	check := func(stage string) {
		t.Helper()
		snap := r.Gather()
		if snap.Counters["explore.states"] != 125 {
			t.Errorf("%s: states = %d, want 125", stage, snap.Counters["explore.states"])
		}
		if snap.Gauges["explore.frontier_max"] != 80 {
			t.Errorf("%s: frontier_max = %d, want 80 (max, not sum)", stage, snap.Gauges["explore.frontier_max"])
		}
		if tm := snap.Timers["t"]; tm.Count != 2 || tm.TotalNS != int64(3*time.Millisecond) {
			t.Errorf("%s: timer = %+v", stage, tm)
		}
		if h := snap.Histograms["explore.level_ns"]; h.Count != 2 || h.Sum != 3000 {
			t.Errorf("%s: histogram = %+v", stage, h)
		}
	}
	check("both live")

	r.Release(a)
	check("a retired")
	r.Release(b)
	check("both retired")

	// Releasing twice (or a foreign sink) must not double-count.
	r.Release(a)
	r.Release(NewSink())
	check("idempotent release")
}

// TestRegistryNilSafe: a nil registry is free to use everywhere.
func TestRegistryNilSafe(t *testing.T) {
	t.Parallel()
	var r *Registry
	s := r.Attach()
	if s != nil {
		t.Error("nil registry returned a live sink")
	}
	s.Counter("x").Inc() // no-op all the way down
	r.Release(s)
	if snap := r.Gather(); len(snap.Counters) != 0 {
		t.Errorf("nil gather: %+v", snap)
	}
}

// TestRegistryConcurrent exercises attach/observe/release/gather races
// under -race (make verify runs this package with the race detector).
func TestRegistryConcurrent(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	const jobs = 16
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := r.Attach()
			for i := 0; i < 100; i++ {
				s.Counter("n").Inc()
				s.Histogram("h").Observe(int64(i))
			}
			r.Release(s)
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Gather()
			}
		}
	}()
	wg.Wait()
	close(done)
	snap := r.Gather()
	if snap.Counters["n"] != jobs*100 {
		t.Errorf("counter n = %d, want %d", snap.Counters["n"], jobs*100)
	}
	if snap.Histograms["h"].Count != jobs*100 {
		t.Errorf("histogram count = %d, want %d", snap.Histograms["h"].Count, jobs*100)
	}
}

// TestReportRateFloor pins the sub-millisecond rate guard: a 10µs run
// with real counters reports rates derived over RateFloor, not over
// the raw wall time (which would inflate them 100x here).
func TestReportRateFloor(t *testing.T) {
	t.Parallel()
	s := NewSink()
	s.Counter("explore.states").Add(500)
	rep := s.Report("explore", nil, time.Time{}, 10*time.Microsecond)
	if got, want := rep.Rates["explore.states_per_sec"], 500/RateFloor.Seconds(); got != want {
		t.Errorf("states_per_sec = %v, want %v (floored denominator)", got, want)
	}
	// At or above the floor the true elapsed is used.
	rep = s.Report("explore", nil, time.Time{}, 2*time.Second)
	if got := rep.Rates["explore.states_per_sec"]; got != 250 {
		t.Errorf("states_per_sec = %v, want 250", got)
	}
}

package obs

import "sync"

// Registry aggregates metrics across the concurrent Sinks of a
// long-lived process — the dacd daemon's per-job sinks plus its own —
// into one merged Snapshot for a scrape endpoint. Live sinks are read
// in place at every Gather; a released sink's final snapshot is folded
// into a retired accumulator, so totals survive job completion and the
// registry never holds more than the live sinks plus one snapshot.
// All methods are safe for concurrent use; a nil *Registry hands out
// nil sinks and empty snapshots, so instrumentation stays free when
// disabled.
type Registry struct {
	mu      sync.Mutex
	live    map[*Sink]struct{}
	retired Snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{live: make(map[*Sink]struct{}), retired: emptySnapshot()}
}

// Attach creates a new live Sink tracked by the registry. A nil
// registry returns a nil (no-op) sink.
func (r *Registry) Attach() *Sink {
	if r == nil {
		return nil
	}
	s := NewSink()
	r.mu.Lock()
	r.live[s] = struct{}{}
	r.mu.Unlock()
	return s
}

// Release detaches s, folding its final snapshot into the retired
// accumulator so its totals keep counting in Gather. Releasing a sink
// the registry does not track (or nil) is a no-op.
func (r *Registry) Release(s *Sink) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.live[s]; !ok {
		return
	}
	delete(r.live, s)
	r.retired.Merge(s.Snapshot())
}

// Gather returns the merged snapshot of every sink the registry has
// seen: retired totals plus the current state of all live sinks.
// Counters, timers, and histogram buckets sum; gauges take the
// maximum. A nil registry gathers an empty snapshot.
func (r *Registry) Gather() Snapshot {
	snap := emptySnapshot()
	if r == nil {
		return snap
	}
	r.mu.Lock()
	live := make([]*Sink, 0, len(r.live))
	for s := range r.live {
		live = append(live, s)
	}
	snap.Merge(r.retired)
	r.mu.Unlock()
	// Live sinks are snapshotted outside the registry lock: each
	// Sink.Snapshot takes its own lock, and a job finishing mid-gather
	// is indistinguishable from one finishing just after.
	for _, s := range live {
		snap.Merge(s.Snapshot())
	}
	return snap
}

func emptySnapshot() Snapshot {
	return Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Timers:     make(map[string]TimerSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
}

// Merge folds o into s: counters and timers sum, gauges take the
// maximum (they are high-water marks across jobs), histograms merge
// bucket-wise. Maps missing in s are created on demand, so a zero
// Snapshot is a valid merge target.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	if len(o.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	for name, v := range o.Gauges {
		if cur, ok := s.Gauges[name]; !ok || v > cur {
			s.Gauges[name] = v
		}
	}
	if len(o.Timers) > 0 && s.Timers == nil {
		s.Timers = make(map[string]TimerSnapshot)
	}
	for name, t := range o.Timers {
		cur := s.Timers[name]
		cur.Count += t.Count
		cur.TotalNS += t.TotalNS
		s.Timers[name] = cur
	}
	if len(o.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for name, h := range o.Histograms {
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every handle operation is a no-op on nil receivers, so
// uninstrumented runs pay only the nil checks.
func TestNilSafety(t *testing.T) {
	t.Parallel()
	var s *Sink
	c := s.Counter("x")
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 0 {
		t.Errorf("nil counter loaded %d", got)
	}
	g := s.Gauge("y")
	g.Set(7)
	g.SetMax(9)
	if got := g.Load(); got != 0 {
		t.Errorf("nil gauge loaded %d", got)
	}
	tm := s.Timer("z")
	tm.Observe(time.Second)
	tm.Start()()
	if tm.Count() != 0 || tm.Total() != 0 {
		t.Errorf("nil timer recorded %d obs, %s total", tm.Count(), tm.Total())
	}
	snap := s.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Timers) != 0 {
		t.Errorf("nil sink snapshot not empty: %+v", snap)
	}
	if names := s.CounterNames(); names != nil {
		t.Errorf("nil sink counter names: %v", names)
	}
	var e *Emitter
	e.Emit("nope", Fields{"a": 1})
	if e.Err() != nil || e.Seq() != 0 {
		t.Error("nil emitter not inert")
	}
}

// TestConcurrentCounters hammers one sink from many goroutines; with
// -race this doubles as the data-race check, and the totals pin the
// determinism contract (sums of work done, not samples).
func TestConcurrentCounters(t *testing.T) {
	t.Parallel()
	const workers, perWorker = 16, 1000
	s := NewSink()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.Counter("steps")
			g := s.Gauge("depth")
			tm := s.Timer("lap")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(i))
				tm.Observe(time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := s.Snapshot()
	if got := snap.Counters["steps"]; got != workers*perWorker {
		t.Errorf("steps = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Gauges["depth"]; got != perWorker-1 {
		t.Errorf("depth high-water = %d, want %d", got, perWorker-1)
	}
	if got := snap.Timers["lap"].Count; got != workers*perWorker {
		t.Errorf("lap count = %d, want %d", got, workers*perWorker)
	}
}

// TestSameHandle: repeated lookups of one name return the same handle.
func TestSameHandle(t *testing.T) {
	t.Parallel()
	s := NewSink()
	if s.Counter("a") != s.Counter("a") {
		t.Error("counter handles differ across lookups")
	}
	if s.Gauge("a") != s.Gauge("a") {
		t.Error("gauge handles differ across lookups")
	}
	if s.Timer("a") != s.Timer("a") {
		t.Error("timer handles differ across lookups")
	}
	s.Counter("b").Inc()
	if got := s.CounterNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("counter names = %v, want [a b]", got)
	}
}

// TestEmitterJSONL: every emitted line is a standalone JSON object with
// the reserved keys plus the payload, in emission order.
func TestEmitterJSONL(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	fixed := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	e := NewEmitterAt(&buf, func() time.Time { return fixed })
	e.Emit("run.start", Fields{"tool": "test"})
	e.Emit("heartbeat", Fields{"states": 42, "frontier": 7})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if e.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", e.Seq())
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	if lines[0]["event"] != "run.start" || lines[0]["tool"] != "test" || lines[0]["seq"] != float64(1) {
		t.Errorf("first line: %v", lines[0])
	}
	if lines[1]["event"] != "heartbeat" || lines[1]["states"] != float64(42) {
		t.Errorf("second line: %v", lines[1])
	}
	if ts, _ := lines[1]["ts"].(string); !strings.HasPrefix(ts, "2026-08-05T12:00:00") {
		t.Errorf("ts = %v", lines[1]["ts"])
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errWrite
	}
	w.n--
	return len(p), nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write refused" }

// TestEmitterLatchesError: a failing writer latches the first error and
// later emissions are dropped instead of wedging the run.
func TestEmitterLatchesError(t *testing.T) {
	t.Parallel()
	e := NewEmitter(&errWriter{n: 1})
	e.Emit("ok", nil)
	e.Emit("fails", nil)
	e.Emit("dropped", nil)
	if e.Err() != errWrite {
		t.Fatalf("err = %v, want latched write error", e.Err())
	}
	if e.Seq() != 2 {
		t.Errorf("seq advanced to %d after latched error, want 2", e.Seq())
	}
}

// TestRunReportRoundTrip: the -metrics document round-trips through
// JSON with counters, duration, and derived throughput intact.
func TestRunReportRoundTrip(t *testing.T) {
	t.Parallel()
	s := NewSink()
	s.Counter("explore.states").Add(1000)
	s.Counter("explore.transitions").Add(2500)
	s.Gauge("explore.frontier_max").SetMax(64)
	start := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	rep := s.Report("explore", []string{"-protocol", "alg2"}, start, 2*time.Second)
	if got := rep.Rates["explore.states_per_sec"]; got != 500 {
		t.Errorf("states_per_sec = %v, want 500", got)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "explore" || back.Counters["explore.transitions"] != 2500 ||
		back.DurationNS != int64(2*time.Second) || back.Gauges["explore.frontier_max"] != 64 {
		t.Errorf("round-tripped report differs: %+v", back)
	}
	if back.Rates["explore.transitions_per_sec"] != 1250 {
		t.Errorf("transitions_per_sec = %v", back.Rates["explore.transitions_per_sec"])
	}
}

// TestReportZeroDuration: a zero-length run yields no rates rather than
// dividing by zero.
func TestReportZeroDuration(t *testing.T) {
	t.Parallel()
	s := NewSink()
	s.Counter("x").Inc()
	rep := s.Report("t", nil, time.Time{}, 0)
	if len(rep.Rates) != 0 {
		t.Errorf("rates on zero duration: %v", rep.Rates)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Fields carries the payload of one structured event. Keys are
// marshaled in sorted order (encoding/json map behaviour), so event
// lines with equal payloads are byte-identical.
type Fields map[string]any

// Emitter writes structured events as JSON Lines: one object per line
// with the reserved keys "event" (the event name), "seq" (a 1-based
// emission sequence number), and "ts" (RFC 3339 wall time with
// nanoseconds), merged with the caller's fields. Emissions are
// serialized by an internal mutex, so an Emitter is safe for
// concurrent use; a nil *Emitter discards events, making event hooks
// free when disabled.
type Emitter struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
	now func() time.Time
}

// NewEmitter returns an emitter writing JSONL events to w.
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: w, now: time.Now}
}

// NewEmitterAt is NewEmitter with an injected clock, for deterministic
// event streams in tests.
func NewEmitterAt(w io.Writer, now func() time.Time) *Emitter {
	return &Emitter{w: w, now: now}
}

// Emit writes one event line. The first write error is latched (see
// Err) and subsequent emissions become no-ops, so a dead event file
// cannot wedge a run. No-op on a nil receiver.
func (e *Emitter) Emit(event string, fields Fields) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.seq++
	line := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		line[k] = v
	}
	line["event"] = event
	line["seq"] = e.seq
	line["ts"] = e.now().Format(time.RFC3339Nano)
	buf, err := json.Marshal(line)
	if err != nil {
		e.err = err
		return
	}
	buf = append(buf, '\n')
	if _, err := e.w.Write(buf); err != nil {
		e.err = err
	}
}

// Err returns the first emission error, if any (nil for a nil
// receiver).
func (e *Emitter) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Seq returns the number of events emitted so far (0 for a nil
// receiver).
func (e *Emitter) Seq() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// SetSeq sets the emission sequence counter, so a run resumed from a
// checkpoint continues the original stream's numbering instead of
// restarting at 1. No-op on a nil receiver.
func (e *Emitter) SetSeq(seq int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq = seq
}

// Sync forces buffered events to stable storage when the underlying
// writer supports it (an *os.File's Sync, or a Flush method) and
// returns the latched emission error, so callers shutting down — the
// daemon's drain path in particular — observe a dead event file
// instead of silently dropping its tail. Nil-receiver safe.
func (e *Emitter) Sync() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	switch w := e.w.(type) {
	case interface{ Sync() error }:
		e.err = w.Sync()
	case interface{ Flush() error }:
		e.err = w.Flush()
	}
	return e.err
}

// TruncateEventsFile trims the JSONL events file at path to the prefix
// of lines with seq <= maxSeq, dropping any torn trailing line a hard
// kill may have left. Called before resuming a checkpointed run so the
// continued stream is byte-identical to an uninterrupted one: events
// emitted after the snapshot was taken are discarded and re-emitted by
// the resumed run. A missing file is not an error (nothing to trim).
func TruncateEventsFile(path string, maxSeq int64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	off := 0
	for off < len(buf) {
		nl := bytes.IndexByte(buf[off:], '\n')
		if nl < 0 {
			break // torn final line: drop
		}
		var rec struct {
			Seq int64 `json:"seq"`
		}
		if json.Unmarshal(buf[off:off+nl], &rec) != nil || rec.Seq > maxSeq {
			break
		}
		off += nl + 1
	}
	if off == len(buf) {
		return nil
	}
	return os.Truncate(path, int64(off))
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Fields carries the payload of one structured event. Keys are
// marshaled in sorted order (encoding/json map behaviour), so event
// lines with equal payloads are byte-identical.
type Fields map[string]any

// Emitter writes structured events as JSON Lines: one object per line
// with the reserved keys "event" (the event name), "seq" (a 1-based
// emission sequence number), and "ts" (RFC 3339 wall time with
// nanoseconds), merged with the caller's fields. Emissions are
// serialized by an internal mutex, so an Emitter is safe for
// concurrent use; a nil *Emitter discards events, making event hooks
// free when disabled.
type Emitter struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
	now func() time.Time
}

// NewEmitter returns an emitter writing JSONL events to w.
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: w, now: time.Now}
}

// NewEmitterAt is NewEmitter with an injected clock, for deterministic
// event streams in tests.
func NewEmitterAt(w io.Writer, now func() time.Time) *Emitter {
	return &Emitter{w: w, now: now}
}

// Emit writes one event line. The first write error is latched (see
// Err) and subsequent emissions become no-ops, so a dead event file
// cannot wedge a run. No-op on a nil receiver.
func (e *Emitter) Emit(event string, fields Fields) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.seq++
	line := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		line[k] = v
	}
	line["event"] = event
	line["seq"] = e.seq
	line["ts"] = e.now().Format(time.RFC3339Nano)
	buf, err := json.Marshal(line)
	if err != nil {
		e.err = err
		return
	}
	buf = append(buf, '\n')
	if _, err := e.w.Write(buf); err != nil {
		e.err = err
	}
}

// Err returns the first emission error, if any (nil for a nil
// receiver).
func (e *Emitter) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Seq returns the number of events emitted so far (0 for a nil
// receiver).
func (e *Emitter) Seq() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

package obs

import (
	"encoding/json"
	"io"
	"time"
)

// RunReport is the final run-report document the cmd tools write behind
// their -metrics flag: the tool's identity, the wall-clock envelope,
// every metric collected during the run, and derived per-second
// throughput rates. The schema is documented in EXPERIMENTS.md
// ("Reading run reports").
type RunReport struct {
	// Tool names the producing command (e.g. "explore").
	Tool string `json:"tool"`
	// Args is the command line the run was invoked with.
	Args []string `json:"args,omitempty"`
	// Start is the run's wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNS is the run's wall-clock duration in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// DurationSeconds is DurationNS in seconds, for human reading.
	DurationSeconds float64 `json:"duration_seconds"`
	// Counters, Gauges, Timers, and Histograms are the Snapshot of the
	// run's Sink.
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Rates maps "<counter>_per_sec" to counter/DurationSeconds for
	// every counter — throughput (states/sec, candidates/sec, ...) for
	// free on every metric. The denominator is floored at RateFloor so
	// a sub-millisecond run cannot report absurd rates.
	Rates map[string]float64 `json:"rates"`
}

// RateFloor is the minimum wall time Rates are derived over. Timer
// resolution on a loaded host is coarser than the runtime of a trivial
// instance, so dividing a real counter by a near-zero elapsed produces
// rates off by orders of magnitude; flooring the denominator bounds
// the distortion to "at most what the run did in a millisecond". Runs
// with zero or negative elapsed report no rates at all.
const RateFloor = time.Millisecond

// Report packages the sink's snapshot into a RunReport with derived
// rates. It works on a nil Sink (empty metrics).
func (s *Sink) Report(tool string, args []string, start time.Time, elapsed time.Duration) *RunReport {
	snap := s.Snapshot()
	rep := &RunReport{
		Tool:            tool,
		Args:            args,
		Start:           start,
		DurationNS:      int64(elapsed),
		DurationSeconds: elapsed.Seconds(),
		Counters:        snap.Counters,
		Gauges:          snap.Gauges,
		Timers:          snap.Timers,
		Histograms:      snap.Histograms,
		Rates:           make(map[string]float64, len(snap.Counters)),
	}
	if elapsed > 0 {
		secs := elapsed.Seconds()
		if elapsed < RateFloor {
			secs = RateFloor.Seconds()
		}
		for name, v := range snap.Counters {
			rep.Rates[name+"_per_sec"] = float64(v) / secs
		}
	}
	return rep
}

// WriteJSON serializes the report as indented JSON followed by a
// newline.
func (r *RunReport) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadReport parses a RunReport previously serialized with WriteJSON.
func ReadReport(r io.Reader) (*RunReport, error) {
	var rep RunReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

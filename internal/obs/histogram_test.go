package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets pins the bucketing rule: bucket i holds values
// in [2^(i-1), 2^i), bucket 0 holds <= 0, and quantile estimates are
// bucket upper bounds.
func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	h := &Histogram{}
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 9 {
		t.Fatalf("count = %d, want 9", snap.Count)
	}
	if snap.Sum != 0+0+1+2+3+4+7+8+1000 {
		t.Errorf("sum = %d", snap.Sum)
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}
	got := map[int]int64{}
	for _, b := range snap.Buckets {
		got[b.Bit] = b.Count
	}
	for bit, n := range want {
		if got[bit] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", bit, got[bit], n, snap.Buckets)
		}
	}
	// 9 observations: p50 is the 5th smallest (value 3, bucket 2 →
	// upper bound 3); p99 is the 9th (value 1000, bucket 10 → 1023).
	if snap.P50 != 3 {
		t.Errorf("p50 = %d, want 3", snap.P50)
	}
	if snap.P99 != 1023 {
		t.Errorf("p99 = %d, want 1023", snap.P99)
	}
}

// TestHistogramNilSafe: a nil histogram discards everything.
func TestHistogramNilSafe(t *testing.T) {
	t.Parallel()
	var h *Histogram
	h.Observe(5)
	h.ObserveDuration(time.Second)
	h.Start()()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded something")
	}
	if snap := h.Snapshot(); snap.Count != 0 || len(snap.Buckets) != 0 {
		t.Errorf("nil snapshot: %+v", snap)
	}
}

// TestHistogramExtremes: MaxInt64 observations land in the top bucket
// and its quantile upper bound saturates instead of overflowing.
func TestHistogramExtremes(t *testing.T) {
	t.Parallel()
	h := &Histogram{}
	h.Observe(math.MaxInt64)
	snap := h.Snapshot()
	if len(snap.Buckets) != 1 || snap.Buckets[0].Bit != 63 {
		t.Fatalf("buckets: %+v", snap.Buckets)
	}
	if snap.P50 != math.MaxInt64 {
		t.Errorf("p50 = %d, want MaxInt64", snap.P50)
	}
}

// TestHistogramConcurrent: observations from many goroutines are all
// accounted (the lock-free claim, exercised under -race by make
// verify).
func TestHistogramConcurrent(t *testing.T) {
	t.Parallel()
	h := &Histogram{}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Errorf("count = %d, want %d", snap.Count, workers*per)
	}
	var bucketSum int64
	for _, b := range snap.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != workers*per {
		t.Errorf("bucket sum = %d, want %d", bucketSum, workers*per)
	}
}

// TestHistogramSnapshotMerge: merging snapshots equals observing the
// union, including recomputed quantiles.
func TestHistogramSnapshotMerge(t *testing.T) {
	t.Parallel()
	a, b, both := &Histogram{}, &Histogram{}, &Histogram{}
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		both.Observe(i)
	}
	for i := int64(1000); i <= 1100; i++ {
		b.Observe(i)
		both.Observe(i)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := both.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Errorf("merged totals %d/%d, want %d/%d", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("merged buckets %+v, want %+v", merged.Buckets, want.Buckets)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Errorf("bucket %d: %+v vs %+v", i, merged.Buckets[i], want.Buckets[i])
		}
	}
	if merged.P50 != want.P50 || merged.P90 != want.P90 || merged.P99 != want.P99 {
		t.Errorf("merged quantiles %d/%d/%d, want %d/%d/%d",
			merged.P50, merged.P90, merged.P99, want.P50, want.P90, want.P99)
	}
}

// TestSinkHistogram: sinks hand out stable histogram handles and
// include them in snapshots; nil sinks stay free.
func TestSinkHistogram(t *testing.T) {
	t.Parallel()
	s := NewSink()
	h := s.Histogram("explore.level_ns")
	if h2 := s.Histogram("explore.level_ns"); h2 != h {
		t.Error("histogram handle not stable across lookups")
	}
	h.Observe(100)
	snap := s.Snapshot()
	if snap.Histograms["explore.level_ns"].Count != 1 {
		t.Errorf("snapshot histograms: %+v", snap.Histograms)
	}
	var nilSink *Sink
	if nilSink.Histogram("x") != nil {
		t.Error("nil sink returned a live histogram")
	}
}

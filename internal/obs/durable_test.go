package obs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSetSeqContinuity checks that an emitter seeded with SetSeq
// continues an interrupted stream's numbering, producing lines
// byte-identical to the uninterrupted stream (the property checkpoint
// resume relies on).
func TestSetSeqContinuity(t *testing.T) {
	t.Parallel()
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	clock := func() time.Time { return fixed }

	var whole bytes.Buffer
	e := NewEmitterAt(&whole, clock)
	for i := 0; i < 5; i++ {
		e.Emit("tick", Fields{"i": i})
	}

	var head, tail bytes.Buffer
	h := NewEmitterAt(&head, clock)
	h.Emit("tick", Fields{"i": 0})
	h.Emit("tick", Fields{"i": 1})
	r := NewEmitterAt(&tail, clock)
	r.SetSeq(h.Seq())
	for i := 2; i < 5; i++ {
		r.Emit("tick", Fields{"i": i})
	}
	if got := head.String() + tail.String(); got != whole.String() {
		t.Errorf("resumed stream differs:\n%q\nvs\n%q", got, whole.String())
	}
	var nilE *Emitter
	nilE.SetSeq(7) // must not panic
}

// flushRecorder counts Flush calls, standing in for a bufio-style
// writer on the Sync path.
type flushRecorder struct {
	bytes.Buffer
	flushes int
	err     error
}

func (f *flushRecorder) Flush() error {
	f.flushes++
	return f.err
}

func TestEmitterSync(t *testing.T) {
	t.Parallel()
	var nilE *Emitter
	if err := nilE.Sync(); err != nil {
		t.Errorf("nil emitter Sync: %v", err)
	}
	// Plain writers (no Sync/Flush) are a no-op.
	if err := NewEmitter(&bytes.Buffer{}).Sync(); err != nil {
		t.Errorf("plain writer Sync: %v", err)
	}
	// Flush-capable writers are flushed, and a flush error latches.
	fr := &flushRecorder{}
	e := NewEmitter(fr)
	e.Emit("x", nil)
	if err := e.Sync(); err != nil || fr.flushes != 1 {
		t.Errorf("Sync: err=%v flushes=%d, want nil, 1", err, fr.flushes)
	}
	fr.err = errors.New("disk gone")
	if err := e.Sync(); !errors.Is(err, fr.err) {
		t.Errorf("Sync did not surface flush error: %v", err)
	}
	if err := e.Err(); !errors.Is(err, fr.err) {
		t.Errorf("flush error not latched: %v", err)
	}
	e.Emit("y", nil) // latched: must be dropped, not crash
	// *os.File path: events written, synced, durable on disk.
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fe := NewEmitter(f)
	fe.Emit("z", nil)
	if err := fe.Sync(); err != nil {
		t.Fatalf("file Sync: %v", err)
	}
	if buf, _ := os.ReadFile(path); !bytes.Contains(buf, []byte(`"event":"z"`)) {
		t.Errorf("synced file missing event: %q", buf)
	}
}

func TestTruncateEventsFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	read := func(p string) string {
		t.Helper()
		buf, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}

	// Overshoot lines (seq > maxSeq) are trimmed.
	p := write("overshoot.jsonl",
		`{"event":"a","seq":1}`+"\n"+`{"event":"b","seq":2}`+"\n"+`{"event":"c","seq":3}`+"\n")
	if err := TruncateEventsFile(p, 2); err != nil {
		t.Fatal(err)
	}
	if got, want := read(p), `{"event":"a","seq":1}`+"\n"+`{"event":"b","seq":2}`+"\n"; got != want {
		t.Errorf("overshoot trim: %q, want %q", got, want)
	}

	// A torn final line (no trailing newline — a kill -9 artifact) is
	// dropped even when its seq would qualify.
	p = write("torn.jsonl", `{"event":"a","seq":1}`+"\n"+`{"event":"b","se`)
	if err := TruncateEventsFile(p, 9); err != nil {
		t.Fatal(err)
	}
	if got, want := read(p), `{"event":"a","seq":1}`+"\n"; got != want {
		t.Errorf("torn-line trim: %q, want %q", got, want)
	}

	// An unparsable complete line stops the keep-scan there.
	p = write("garbage.jsonl", `{"event":"a","seq":1}`+"\n"+"not json\n"+`{"event":"c","seq":3}`+"\n")
	if err := TruncateEventsFile(p, 9); err != nil {
		t.Fatal(err)
	}
	if got, want := read(p), `{"event":"a","seq":1}`+"\n"; got != want {
		t.Errorf("garbage trim: %q, want %q", got, want)
	}

	// A file entirely within budget is untouched.
	whole := `{"event":"a","seq":1}` + "\n" + `{"event":"b","seq":2}` + "\n"
	p = write("whole.jsonl", whole)
	if err := TruncateEventsFile(p, 2); err != nil {
		t.Fatal(err)
	}
	if got := read(p); got != whole {
		t.Errorf("in-budget file modified: %q", got)
	}

	// A missing file is not an error.
	if err := TruncateEventsFile(filepath.Join(dir, "nope.jsonl"), 5); err != nil {
		t.Errorf("missing file: %v", err)
	}
}

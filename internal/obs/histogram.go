package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets a Histogram carries: bucket
// 0 holds observations <= 0, bucket i (1 <= i < histBuckets) holds
// observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i.
// Every non-negative int64 lands in exactly one bucket.
const histBuckets = 64

// Histogram is a lock-free log-bucketed distribution of int64
// observations (latencies in nanoseconds, batch sizes, ...). Updates
// are single atomic increments, so concurrent jobs can share one
// histogram without contention beyond the cache line; snapshots are
// mergeable bucket-wise, which is how the Registry aggregates
// histograms across sinks. Quantile estimates are bucket upper bounds,
// so they are exact to within a factor of 2 — the right resolution for
// "did p99 latency blow up", not for microbenchmarks. The zero value is
// ready to use; a nil *Histogram discards observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to 0. No-op on a
// nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveDuration records d in nanoseconds. No-op on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Start begins timing and returns a stop function recording the
// elapsed nanoseconds when called. Safe on a nil receiver.
func (h *Histogram) Start() func() {
	if h == nil {
		return func() {}
	}
	start := time.Now()
	return func() { h.Observe(int64(time.Since(start))) }
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the accumulated value (0 for a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramBucket is one occupied log2 bucket of a HistogramSnapshot:
// Count observations in [2^(Bit-1), 2^Bit) (Bit 0: values <= 0).
type HistogramBucket struct {
	Bit   int   `json:"bit"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the exported state of one Histogram: totals,
// the occupied buckets in ascending Bit order (zero buckets omitted),
// and the derived p50/p90/p99 quantile estimates.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. The copy is not
// atomic across buckets — concurrent observations may straddle it —
// but every recorded observation lands in exactly one snapshot of a
// quiesced histogram, which is what report generation needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for bit := range h.buckets {
		if n := h.buckets[bit].Load(); n > 0 {
			snap.Buckets = append(snap.Buckets, HistogramBucket{Bit: bit, Count: n})
		}
	}
	snap.refreshQuantiles()
	return snap
}

// bucketUpper is the largest value bucket bit can hold.
func bucketUpper(bit int) int64 {
	if bit <= 0 {
		return 0
	}
	if bit >= 63 {
		return math.MaxInt64
	}
	return (int64(1) << bit) - 1
}

// quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the ceil(q*count)-th smallest observation.
func (s *HistogramSnapshot) quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return bucketUpper(b.Bit)
		}
	}
	return bucketUpper(s.Buckets[len(s.Buckets)-1].Bit)
}

// refreshQuantiles recomputes the exported quantile estimates from the
// bucket counts (after a snapshot or a merge).
func (s *HistogramSnapshot) refreshQuantiles() {
	s.P50 = s.quantile(0.50)
	s.P90 = s.quantile(0.90)
	s.P99 = s.quantile(0.99)
}

// Merge folds o's observations into s bucket-wise and refreshes the
// quantile estimates, keeping buckets sorted by Bit. This is how the
// Registry aggregates one metric's histograms across concurrent jobs.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	merged := make([]HistogramBucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Bit < o.Buckets[j].Bit):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Bit < s.Buckets[i].Bit:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, HistogramBucket{Bit: s.Buckets[i].Bit, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
	s.refreshQuantiles()
}

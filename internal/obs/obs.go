// Package obs is the repository's dependency-free instrumentation
// layer: lock-free run metrics (counters, gauges, timers, log-bucketed
// histograms) collected in a named Sink, a Registry aggregating sinks
// across concurrent jobs (the dacd daemon's /metrics source), a
// structured JSONL event Emitter, and a run-report export (RunReport)
// the cmd tools serialize behind their -metrics flag.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every handle type (*Counter, *Gauge,
//     *Timer, *Sink, *Emitter) is nil-safe: a nil receiver is a no-op,
//     so engines instrument unconditionally and callers opt in by
//     passing a Sink. Hot loops hold the *Counter, never re-resolve
//     names.
//  2. Determinism. Metric values are plain sums of the work performed,
//     never samples of wall time, so two identical runs produce
//     identical Snapshot counter/gauge values at any GOMAXPROCS (the
//     race suite pins this). Wall time lives only in Timers and in the
//     RunReport envelope.
//  3. Standard library only, no dependencies beyond sync/atomic,
//     encoding/json, and time.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic tally. The zero value is
// ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by 1. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 for a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (e.g. frontier depth). The
// zero value is ready to use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n is larger than the current value
// (a high-water mark). No-op on a nil receiver.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 for a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates observed durations with a count, so both the total
// and the mean are recoverable. A nil *Timer discards observations.
type Timer struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
}

// Observe records one duration. No-op on a nil receiver.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.count.Add(1)
		t.total.Add(int64(d))
	}
}

// Start begins timing and returns a stop function that records the
// elapsed duration when called. Safe on a nil receiver.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observations (0 for a nil receiver).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration (0 for a nil receiver).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Sink is a registry of named counters, gauges, and timers for one run.
// Handles are created on first use and live for the Sink's lifetime, so
// engines resolve each name once and update lock-free afterwards. A nil
// *Sink hands out nil handles, making instrumentation free when
// disabled.
type Sink struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewSink returns an empty metrics sink.
func NewSink() *Sink {
	return &Sink{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
// A nil Sink returns a nil (no-op) counter.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use. A
// nil Sink returns a nil (no-op) gauge.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it empty on first use. A nil
// Sink returns a nil (no-op) timer.
func (s *Sink) Timer(name string) *Timer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.timers[name]
	if !ok {
		t = &Timer{}
		s.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it empty on first
// use. A nil Sink returns a nil (no-op) histogram.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.histograms[name]
	if !ok {
		h = &Histogram{}
		s.histograms[name] = h
	}
	return h
}

// TimerSnapshot is the exported state of one Timer.
type TimerSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// TotalNS is the accumulated duration in nanoseconds.
	TotalNS int64 `json:"total_ns"`
}

// Snapshot is a point-in-time copy of a Sink's metrics, suitable for
// JSON export and for equality comparison between runs (Counters and
// Gauges are deterministic; Timers are wall time and are not).
type Snapshot struct {
	// Counters maps counter name to count.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to last/maximum value.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Timers maps timer name to its observation count and total.
	Timers map[string]TimerSnapshot `json:"timers,omitempty"`
	// Histograms maps histogram name to its bucketed distribution and
	// quantile estimates. Like Timers, histogram contents are wall time
	// and are excluded from determinism comparisons.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the sink's current metric values. A nil Sink yields
// an empty (but non-nil-mapped) snapshot.
func (s *Sink) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Timers:     make(map[string]TimerSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		snap.Counters[name] = c.Load()
	}
	for name, g := range s.gauges {
		snap.Gauges[name] = g.Load()
	}
	for name, t := range s.timers {
		snap.Timers[name] = TimerSnapshot{Count: t.Count(), TotalNS: int64(t.Total())}
	}
	for name, h := range s.histograms {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// CounterNames returns the sink's counter names, sorted, for
// deterministic rendering.
func (s *Sink) CounterNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.counters))
	for name := range s.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

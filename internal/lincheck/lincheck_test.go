package lincheck_test

import (
	"errors"
	"sync"
	"testing"

	"setagree/internal/core"
	"setagree/internal/history"
	"setagree/internal/lincheck"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// event builds a completed event.
func event(proc, obj int, op value.Op, resp value.Value, inv, ret int64) history.Event {
	return history.Event{
		Proc: proc, Obj: obj,
		Method: op.Method, Arg: op.Arg, Label: op.Label,
		Resp: resp, Inv: inv, Ret: ret,
	}
}

func TestSequentialRegisterHistoryLinearizable(t *testing.T) {
	t.Parallel()
	h := &history.History{Events: []history.Event{
		event(1, 0, value.Write(5), value.Done, 1, 2),
		event(2, 0, value.Read(), 5, 3, 4),
	}}
	res, err := lincheck.CheckObject(h, objects.NewRegister())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 2 {
		t.Fatalf("witness length %d", len(res.Order))
	}
}

// TestConcurrentReadOldValue checks that a read overlapping a write may
// legally return the old value.
func TestConcurrentReadOldValue(t *testing.T) {
	t.Parallel()
	h := &history.History{Events: []history.Event{
		event(1, 0, value.Write(5), value.Done, 1, 10),
		event(2, 0, value.Read(), value.None, 2, 3), // overlaps the write
	}}
	if _, err := lincheck.CheckObject(h, objects.NewRegister()); err != nil {
		t.Fatalf("overlapping old-value read rejected: %v", err)
	}
}

// TestStaleReadNotLinearizable checks the real-time order is enforced:
// a read strictly after a completed write cannot return the old value.
func TestStaleReadNotLinearizable(t *testing.T) {
	t.Parallel()
	h := &history.History{Events: []history.Event{
		event(1, 0, value.Write(5), value.Done, 1, 2),
		event(2, 0, value.Read(), value.None, 3, 4),
	}}
	_, err := lincheck.CheckObject(h, objects.NewRegister())
	if !errors.Is(err, lincheck.ErrNotLinearizable) {
		t.Fatalf("err = %v, want ErrNotLinearizable", err)
	}
}

// TestNondeterministicSpecBranching checks the 2-SA extension: an
// overlapping pair of proposes may see either order AND either stored
// response.
func TestNondeterministicSpecBranching(t *testing.T) {
	t.Parallel()
	// Both proposes overlap; p1 observes 2 — only explainable if p2's
	// propose linearizes first and the object answers with the later
	// value. The branching checker must find that.
	h := &history.History{Events: []history.Event{
		event(1, 0, value.Propose(1), 2, 1, 10),
		event(2, 0, value.Propose(2), 2, 2, 9),
	}}
	if _, err := lincheck.CheckObject(h, objects.NewTwoSA()); err != nil {
		t.Fatalf("branching linearization not found: %v", err)
	}
}

// TestTwoSAImpossibleResponse checks an unstorable response is refuted.
func TestTwoSAImpossibleResponse(t *testing.T) {
	t.Parallel()
	h := &history.History{Events: []history.Event{
		event(1, 0, value.Propose(1), 9, 1, 2), // 9 was never proposed
	}}
	if _, err := lincheck.CheckObject(h, objects.NewTwoSA()); !errors.Is(err, lincheck.ErrNotLinearizable) {
		t.Fatalf("err = %v, want ErrNotLinearizable", err)
	}
}

func TestEmptyHistory(t *testing.T) {
	t.Parallel()
	res, err := lincheck.CheckObject(&history.History{}, objects.NewRegister())
	if err != nil || len(res.Order) != 0 {
		t.Fatalf("empty history: %v, %v", res, err)
	}
}

func TestTooLarge(t *testing.T) {
	t.Parallel()
	h := &history.History{}
	for i := 0; i < lincheck.MaxEvents+1; i++ {
		h.Events = append(h.Events, event(1, 0, value.Write(1), value.Done, int64(2*i), int64(2*i+1)))
	}
	if _, err := lincheck.CheckObject(h, objects.NewRegister()); !errors.Is(err, lincheck.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// stress runs `procs` goroutines, each performing `each` operations
// produced by opFor against one recorded object, then asserts the
// history is linearizable.
func stress(t *testing.T, sp spec.Spec, procs, each int, opFor func(proc, i int) value.Op) {
	t.Helper()
	rec := history.NewRecorder()
	obj := rec.Wrap(spec.NewAtomic(sp, spec.RotatingChooser()), 0)
	var wg sync.WaitGroup
	for p := 1; p <= procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := obj.Apply(p, opFor(p, i)); err != nil {
					t.Errorf("proc %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	h := rec.History()
	if h.Len() != procs*each {
		t.Fatalf("recorded %d events, want %d", h.Len(), procs*each)
	}
	res, err := lincheck.CheckObject(h, sp)
	if err != nil {
		t.Fatalf("%s stress history not linearizable: %v", sp.Name(), err)
	}
	if len(res.Order) != h.Len() {
		t.Fatalf("witness covers %d of %d events", len(res.Order), h.Len())
	}
}

// The stress tests validate that the Atomic wrapper renders every
// object type linearizable in real concurrent executions — the standing
// assumption of the paper (§3).

func TestStressRegister(t *testing.T) {
	t.Parallel()
	stress(t, objects.NewRegister(), 4, 6, func(p, i int) value.Op {
		if (p+i)%2 == 0 {
			return value.Write(value.Value(p*10 + i))
		}
		return value.Read()
	})
}

func TestStressConsensus(t *testing.T) {
	t.Parallel()
	stress(t, objects.NewConsensus(4), 4, 3, func(p, i int) value.Op {
		return value.Propose(value.Value(p))
	})
}

func TestStressTwoSA(t *testing.T) {
	t.Parallel()
	stress(t, objects.NewTwoSA(), 4, 4, func(p, i int) value.Op {
		return value.Propose(value.Value(p))
	})
}

func TestStressPAC(t *testing.T) {
	t.Parallel()
	stress(t, core.NewPAC(4), 4, 4, func(p, i int) value.Op {
		if i%2 == 0 {
			return value.ProposeAt(value.Value(p), p)
		}
		return value.Decide(p)
	})
}

func TestStressPACM(t *testing.T) {
	t.Parallel()
	stress(t, core.NewPACM(4, 3), 4, 4, func(p, i int) value.Op {
		switch i % 3 {
		case 0:
			return value.ProposeP(value.Value(p), p)
		case 1:
			return value.DecideP(p)
		default:
			return value.ProposeC(value.Value(p))
		}
	})
}

func TestStressQueue(t *testing.T) {
	t.Parallel()
	stress(t, objects.NewQueue(), 3, 6, func(p, i int) value.Op {
		if i%2 == 0 {
			return value.Enqueue(value.Value(p*100 + i))
		}
		return value.Dequeue()
	})
}

func TestStressCounter(t *testing.T) {
	t.Parallel()
	stress(t, objects.NewCounter(), 4, 6, func(p, i int) value.Op {
		return value.FetchAdd(1)
	})
}

// TestCheckSplitsPerObject checks the multi-object entry point.
func TestCheckSplitsPerObject(t *testing.T) {
	t.Parallel()
	rec := history.NewRecorder()
	reg := rec.Wrap(spec.NewAtomic(objects.NewRegister(), nil), 0)
	cons := rec.Wrap(spec.NewAtomic(objects.NewConsensus(2), nil), 1)
	if _, err := reg.Apply(1, value.Write(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := cons.Apply(2, value.Propose(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Apply(2, value.Read()); err != nil {
		t.Fatal(err)
	}
	res, err := lincheck.Check(rec.History(), map[int]spec.Spec{
		0: objects.NewRegister(),
		1: objects.NewConsensus(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d per-object results", len(res))
	}
}

func TestCheckMissingSpec(t *testing.T) {
	t.Parallel()
	h := &history.History{Events: []history.Event{
		event(1, 7, value.Read(), value.None, 1, 2),
	}}
	if _, err := lincheck.Check(h, map[int]spec.Spec{}); err == nil {
		t.Fatal("missing spec accepted")
	}
}

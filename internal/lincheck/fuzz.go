package lincheck

import (
	"context"
	"fmt"
	"sync"

	"setagree/internal/history"
	"setagree/internal/obs"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// OpGen produces the i-th operation of process proc for a fuzz run.
type OpGen func(proc, i int) value.Op

// FuzzOptions configures a linearizability fuzz run.
type FuzzOptions struct {
	// Procs is the number of concurrent client goroutines (default 4).
	Procs int
	// OpsPerProc is the number of operations each client performs
	// (default 4; Procs*OpsPerProc must stay within MaxEvents).
	OpsPerProc int
	// Chooser resolves object nondeterminism (default rotating, so
	// every branch gets exercised over time).
	Chooser spec.Chooser
	// Obs, when set, receives the lincheck.* run metrics: fuzz_runs
	// (schedules tried), events (history events recorded and checked),
	// search_nodes (memoized Wing–Gong search states visited), and
	// not_linearizable (failed checks). Nil disables metrics at zero
	// cost.
	Obs *obs.Sink
	// Ctx, when set, cancels the fuzz run cooperatively: each client
	// goroutine checks it before every operation, the partial history's
	// counters (fuzz_runs, events) are still flushed, and Fuzz returns
	// an error satisfying errors.Is(err, ctx.Err()) without running the
	// linearizability check.
	Ctx context.Context
}

// Fuzz runs a concurrent workload against a fresh Atomic wrapping sp,
// records the history, and checks it for linearizability. It returns
// the recorded history and the witness, or the check's error — the
// standing §3 assumption ("the objects are linearizable") validated
// mechanically for any spec.
func Fuzz(sp spec.Spec, gen OpGen, opts FuzzOptions) (*history.History, *Result, error) {
	if opts.Procs <= 0 {
		opts.Procs = 4
	}
	if opts.OpsPerProc <= 0 {
		opts.OpsPerProc = 4
	}
	if opts.Procs*opts.OpsPerProc > MaxEvents {
		return nil, nil, fmt.Errorf("%d ops exceed %d: %w",
			opts.Procs*opts.OpsPerProc, MaxEvents, ErrTooLarge)
	}
	chooser := opts.Chooser
	if chooser == nil {
		chooser = spec.RotatingChooser()
	}
	rec := history.NewRecorder()
	obj := rec.Wrap(spec.NewAtomic(sp, chooser), 0)

	var wg sync.WaitGroup
	errs := make([]error, opts.Procs)
	for p := 1; p <= opts.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < opts.OpsPerProc; i++ {
				if ctx := opts.Ctx; ctx != nil && ctx.Err() != nil {
					errs[p-1] = fmt.Errorf("lincheck: fuzz interrupted at op %d of process %d: %w", i, p, ctx.Err())
					return
				}
				if _, err := obj.Apply(p, gen(p, i)); err != nil {
					errs[p-1] = err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	// Flush before the error check so a cancelled or failed run still
	// reports the workload it completed.
	h := rec.History()
	opts.Obs.Counter("lincheck.fuzz_runs").Inc()
	opts.Obs.Counter("lincheck.events").Add(int64(h.Len()))
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	res, err := CheckObject(h, sp)
	if err != nil {
		opts.Obs.Counter("lincheck.not_linearizable").Inc()
		return h, nil, err
	}
	opts.Obs.Counter("lincheck.search_nodes").Add(int64(res.StatesVisited))
	return h, res, nil
}

package lincheck_test

import (
	"context"
	"errors"
	"testing"

	"setagree/internal/lincheck"
	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/value"
)

// TestFuzzCancellation runs Fuzz under an already-cancelled context:
// every client stops before its first operation, the run's counters
// are still flushed (the partial-work contract shared with the other
// engines), and the returned error wraps the context's.
func TestFuzzCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := obs.NewSink()
	_, _, err := lincheck.Fuzz(objects.NewRegister(), func(p, i int) value.Op {
		return value.Read()
	}, lincheck.FuzzOptions{Procs: 3, OpsPerProc: 4, Obs: sink, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := sink.Snapshot()
	if got := snap.Counters["lincheck.fuzz_runs"]; got != 1 {
		t.Errorf("lincheck.fuzz_runs = %d, want 1 (cancelled runs still flush counters)", got)
	}
	if got := snap.Counters["lincheck.events"]; got != 0 {
		t.Errorf("lincheck.events = %d, want 0 (no op ran)", got)
	}
	// A live context leaves Fuzz untouched.
	if _, _, err := lincheck.Fuzz(objects.NewRegister(), func(p, i int) value.Op {
		return value.Read()
	}, lincheck.FuzzOptions{Procs: 3, OpsPerProc: 4, Ctx: context.Background()}); err != nil {
		t.Fatalf("Fuzz with live context: %v", err)
	}
}

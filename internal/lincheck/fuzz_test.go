package lincheck_test

import (
	"testing"

	"setagree/internal/core"
	"setagree/internal/lincheck"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// TestFuzzWholeZoo fuzzes every object type in the repository — the
// paper's own objects included — under concurrent clients and verifies
// every recorded history is linearizable w.r.t. its spec. Each entry
// runs several rounds to vary interleavings.
func TestFuzzWholeZoo(t *testing.T) {
	t.Parallel()
	zoo := []struct {
		name string
		sp   spec.Spec
		gen  lincheck.OpGen
	}{
		{"register", objects.NewRegister(), func(p, i int) value.Op {
			if (p+i)%2 == 0 {
				return value.Write(value.Value(p*10 + i))
			}
			return value.Read()
		}},
		{"4-consensus", objects.NewConsensus(4), func(p, i int) value.Op {
			return value.Propose(value.Value(p))
		}},
		{"2-SA", objects.NewTwoSA(), func(p, i int) value.Op {
			return value.Propose(value.Value(p % 3))
		}},
		{"(6,3)-SA", objects.NewSetAgreement(6, 3), func(p, i int) value.Op {
			return value.Propose(value.Value(p))
		}},
		{"sticky", objects.Sticky(), func(p, i int) value.Op {
			return value.Propose(value.Value(p))
		}},
		{"4-PAC", core.NewPAC(4), func(p, i int) value.Op {
			if i%2 == 0 {
				return value.ProposeAt(value.Value(p), p)
			}
			return value.Decide(p)
		}},
		{"(4,2)-PAC", core.NewPACM(4, 2), func(p, i int) value.Op {
			switch i % 3 {
			case 0:
				return value.ProposeP(value.Value(p), p)
			case 1:
				return value.DecideP(p)
			default:
				return value.ProposeC(value.Value(p))
			}
		}},
		{"oprime", core.NewOPrime(2, nil), func(p, i int) value.Op {
			return value.ProposeK(value.Value(p), 1+i%2)
		}},
		{"oprime-base", core.NewOPrimeFromBase(2), func(p, i int) value.Op {
			return value.ProposeK(value.Value(p), 1+i%2)
		}},
		{"pac-face", core.NewPACFace(core.NewPACM(4, 2)), func(p, i int) value.Op {
			if i%2 == 0 {
				return value.ProposeAt(value.Value(p), p)
			}
			return value.Decide(p)
		}},
		{"queue", objects.NewQueue(), func(p, i int) value.Op {
			if i%2 == 0 {
				return value.Enqueue(value.Value(p*100 + i))
			}
			return value.Dequeue()
		}},
		{"queue-with-token", objects.NewQueueWith(7), func(p, i int) value.Op {
			return value.Dequeue()
		}},
		{"counter", objects.NewCounter(), func(p, i int) value.Op {
			return value.FetchAdd(1)
		}},
		{"tas", objects.NewTestAndSet(), func(p, i int) value.Op {
			return value.TestAndSet()
		}},
	}
	choosers := []struct {
		name string
		mk   func() spec.Chooser
	}{
		{"first", spec.FirstChooser},
		{"rotating", spec.RotatingChooser},
		{"seeded", func() spec.Chooser { return spec.SeededChooser(17) }},
	}
	for _, entry := range zoo {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			t.Parallel()
			for _, ch := range choosers {
				for round := 0; round < 4; round++ {
					h, res, err := lincheck.Fuzz(entry.sp, entry.gen, lincheck.FuzzOptions{
						Procs:      4,
						OpsPerProc: 4,
						Chooser:    ch.mk(),
					})
					if err != nil {
						t.Fatalf("chooser=%s round=%d: %v (history %d events)",
							ch.name, round, err, h.Len())
					}
					if len(res.Order) != h.Len() {
						t.Fatalf("witness covers %d of %d", len(res.Order), h.Len())
					}
				}
			}
		})
	}
}

// TestFuzzRejectsOversizedRun pins the MaxEvents guard.
func TestFuzzRejectsOversizedRun(t *testing.T) {
	t.Parallel()
	_, _, err := lincheck.Fuzz(objects.NewRegister(), func(p, i int) value.Op {
		return value.Read()
	}, lincheck.FuzzOptions{Procs: 9, OpsPerProc: 8})
	if err == nil {
		t.Fatal("oversized fuzz accepted")
	}
}

// TestFuzzSurfacesBadOps checks generator errors propagate.
func TestFuzzSurfacesBadOps(t *testing.T) {
	t.Parallel()
	_, _, err := lincheck.Fuzz(objects.NewRegister(), func(p, i int) value.Op {
		return value.Propose(1) // not a register op
	}, lincheck.FuzzOptions{Procs: 1, OpsPerProc: 1})
	if err == nil {
		t.Fatal("bad op accepted")
	}
}

// Package lincheck decides whether a recorded concurrent history is
// linearizable [11] with respect to a sequential specification. It
// implements the Wing–Gong search with memoization on (linearized-set,
// object-state) pairs, extended to nondeterministic specifications (the
// strong set-agreement objects): an event matches if *some* transition
// of the spec yields its observed response.
package lincheck

import (
	"errors"
	"fmt"
	"strconv"

	"setagree/internal/history"
	"setagree/internal/spec"
)

// Limits and failure modes.
var (
	// ErrTooLarge reports a per-object history beyond MaxEvents.
	ErrTooLarge = errors.New("lincheck: history too large")
	// ErrNotLinearizable reports that no linearization exists.
	ErrNotLinearizable = errors.New("history is not linearizable")
)

// MaxEvents bounds the number of events per object in one check (the
// linearized set is a 64-bit mask).
const MaxEvents = 64

// Result describes a successful check.
type Result struct {
	// Order is a witness linearization: indices into the checked
	// history's Events in linearization order.
	Order []int
	// StatesVisited counts memoized search states, a measure of search
	// effort.
	StatesVisited int
}

// Check verifies that every per-object subhistory of h is linearizable
// with respect to specs[obj]. It returns a witness per object id.
func Check(h *history.History, specs map[int]spec.Spec) (map[int]*Result, error) {
	out := make(map[int]*Result)
	for obj, sub := range h.PerObject() {
		sp, ok := specs[obj]
		if !ok {
			return nil, fmt.Errorf("lincheck: no spec for object %d: %w", obj, spec.ErrBadOp)
		}
		res, err := CheckObject(sub, sp)
		if err != nil {
			return nil, fmt.Errorf("object %d (%s): %w", obj, sp.Name(), err)
		}
		out[obj] = res
	}
	return out, nil
}

// CheckObject verifies a single-object history against its spec using
// the Wing–Gong search: repeatedly pick a minimal unlinearized event
// (one preceded in real time only by already-linearized events) whose
// observed response some spec transition can produce, and recurse. The
// search memoizes (linearized-mask, state-key) pairs, so each
// combination is explored once.
func CheckObject(h *history.History, sp spec.Spec) (*Result, error) {
	n := h.Len()
	if n > MaxEvents {
		return nil, fmt.Errorf("%d events (max %d): %w", n, MaxEvents, ErrTooLarge)
	}
	if n == 0 {
		return &Result{}, nil
	}
	events := h.Events

	s := searcher{
		events: events,
		sp:     sp,
		seen:   make(map[string]bool),
		order:  make([]int, 0, n),
	}
	full := uint64(1)<<uint(n) - 1
	if !s.search(0, sp.Init()) {
		return nil, fmt.Errorf("%s over %d events: %w", sp.Name(), n, ErrNotLinearizable)
	}
	if len(s.order) != n || s.doneMask != full {
		return nil, fmt.Errorf("lincheck: internal witness inconsistency: %w", ErrNotLinearizable)
	}
	return &Result{Order: s.order, StatesVisited: len(s.seen)}, nil
}

type searcher struct {
	events   []history.Event
	sp       spec.Spec
	seen     map[string]bool
	order    []int
	doneMask uint64
}

// search tries to extend the linearization given the set of linearized
// events in mask and the object state st. It returns true when every
// event is linearized, leaving the witness in s.order.
func (s *searcher) search(mask uint64, st spec.State) bool {
	n := len(s.events)
	if mask == uint64(1)<<uint(n)-1 {
		s.doneMask = mask
		return true
	}
	key := strconv.FormatUint(mask, 36) + "|" + st.Key()
	if s.seen[key] {
		return false
	}
	s.seen[key] = true

	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if mask&bit != 0 {
			continue
		}
		e := s.events[i]
		// Minimality: every event that returned before e was invoked
		// must already be linearized.
		minimal := true
		for j := 0; j < n; j++ {
			jbit := uint64(1) << uint(j)
			if j == i || mask&jbit != 0 {
				continue
			}
			if e.PrecededBy(s.events[j]) {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		ts, err := s.sp.Step(st, e.Op())
		if err != nil {
			continue
		}
		for _, t := range ts {
			if t.Resp != e.Resp {
				continue
			}
			s.order = append(s.order, i)
			if s.search(mask|bit, t.Next) {
				return true
			}
			s.order = s.order[:len(s.order)-1]
		}
	}
	return false
}

// Package value defines the value and operation model shared by every
// object specification in this repository.
//
// The paper ("Life Beyond Set Agreement", PODC 2017) works with objects
// whose operations carry proposal values and labels and whose responses
// are either proposal values or one of three special symbols: NIL (an
// unset state component), ⊥ (the "bottom" failure/upset response), and
// done (the acknowledgement returned by propose operations). Processes
// are assumed never to propose the special symbols (§3, footnote 4).
package value

import (
	"math"
	"strconv"
)

// Value is a datum stored in, proposed to, or returned by a shared
// object. Non-negative values (and, in general, every value that is not
// one of the three reserved sentinels) are ordinary application values.
type Value int64

// Reserved sentinel values. They live at the far negative end of the
// Value range so that every realistic application value is usable.
const (
	// None is the paper's NIL: the initial, unset content of a state
	// component such as the n-PAC arrays V[1..n] and variables L, val.
	None Value = math.MinInt64

	// Bottom is the paper's ⊥: returned by decide operations on upset
	// n-PAC objects, by n-consensus objects after n proposals, and by
	// (n,k)-SA objects after n proposals.
	Bottom Value = math.MinInt64 + 1

	// Done is the acknowledgement returned by propose operations that
	// carry no decision (n-PAC PROPOSE and register WRITE).
	Done Value = math.MinInt64 + 2
)

// IsSentinel reports whether v is one of the reserved sentinel values
// (None, Bottom, or Done) rather than an application value.
func (v Value) IsSentinel() bool {
	return v == None || v == Bottom || v == Done
}

// String renders application values as decimal integers and the
// sentinels by their paper names.
func (v Value) String() string {
	switch v {
	case None:
		return "NIL"
	case Bottom:
		return "⊥"
	case Done:
		return "done"
	default:
		return strconv.FormatInt(int64(v), 10)
	}
}

// Method identifies the operation kind applied to a shared object. The
// set covers every object in the paper: registers (Read/Write),
// consensus and set-agreement objects (Propose), n-PAC objects
// (ProposeAt/Decide, §3), (n,m)-PAC objects (ProposeC/ProposeP/DecideP,
// §5), and the O'_n collection object (ProposeK, §6).
type Method uint8

// Supported operation kinds.
const (
	// MethodRead reads an atomic register.
	MethodRead Method = iota + 1
	// MethodWrite writes Arg into an atomic register.
	MethodWrite
	// MethodPropose is PROPOSE(v) on consensus and (n,k)-SA objects.
	MethodPropose
	// MethodProposeAt is PROPOSE(v, i) on an n-PAC object; Label is i.
	MethodProposeAt
	// MethodDecide is DECIDE(i) on an n-PAC object; Label is i.
	MethodDecide
	// MethodProposeC is PROPOSEC(v) on an (n,m)-PAC object (§5).
	MethodProposeC
	// MethodProposeP is PROPOSEP(v, i) on an (n,m)-PAC object (§5).
	MethodProposeP
	// MethodDecideP is DECIDEP(i) on an (n,m)-PAC object (§5).
	MethodDecideP
	// MethodProposeK is PROPOSE(v, k) on the O'_n collection object
	// (§6); Label is k.
	MethodProposeK
	// MethodEnqueue appends Arg to a FIFO queue.
	MethodEnqueue
	// MethodDequeue removes and returns the queue head (None if empty).
	MethodDequeue
	// MethodFetchAdd adds Arg to a counter and returns the prior value.
	MethodFetchAdd
	// MethodTestAndSet sets a bit and returns its prior value (0 or 1).
	MethodTestAndSet

	methodCount
)

var methodNames = [...]string{
	MethodRead:       "READ",
	MethodWrite:      "WRITE",
	MethodPropose:    "PROPOSE",
	MethodProposeAt:  "PROPOSE_AT",
	MethodDecide:     "DECIDE",
	MethodProposeC:   "PROPOSE_C",
	MethodProposeP:   "PROPOSE_P",
	MethodDecideP:    "DECIDE_P",
	MethodProposeK:   "PROPOSE_K",
	MethodEnqueue:    "ENQUEUE",
	MethodDequeue:    "DEQUEUE",
	MethodFetchAdd:   "FETCH_ADD",
	MethodTestAndSet: "TEST_AND_SET",
}

// Valid reports whether m is one of the defined operation kinds.
func (m Method) Valid() bool {
	return m >= MethodRead && m < methodCount
}

// String returns the canonical upper-case name of the method.
func (m Method) String() string {
	if !m.Valid() {
		return "METHOD(" + strconv.Itoa(int(m)) + ")"
	}
	return methodNames[m]
}

// TakesArg reports whether operations of this kind carry a value
// argument (Op.Arg is meaningful).
func (m Method) TakesArg() bool {
	switch m {
	case MethodWrite, MethodPropose, MethodProposeAt,
		MethodProposeC, MethodProposeP, MethodProposeK,
		MethodEnqueue, MethodFetchAdd:
		return true
	default:
		return false
	}
}

// TakesLabel reports whether operations of this kind carry a label
// (Op.Label is meaningful): the port i of an n-PAC object or the level
// k of an O'_n collection.
func (m Method) TakesLabel() bool {
	switch m {
	case MethodProposeAt, MethodDecide, MethodProposeP,
		MethodDecideP, MethodProposeK:
		return true
	default:
		return false
	}
}

// LabelIsPort reports whether the label of operations of this kind
// names a port — a 1-based slot tied to a process id, which must be
// renamed when process ids are permuted under symmetry reduction — as
// opposed to a level (ProposeK's k), which is id-independent.
func (m Method) LabelIsPort() bool {
	switch m {
	case MethodProposeAt, MethodDecide, MethodProposeP, MethodDecideP:
		return true
	default:
		return false
	}
}

// Op is a single operation applied to a shared object.
type Op struct {
	// Method is the operation kind.
	Method Method
	// Arg is the value argument for methods with TakesArg.
	Arg Value
	// Label is the port/level argument for methods with TakesLabel.
	Label int
}

// String renders the operation in the paper's notation, e.g.
// "PROPOSE_AT(5, 2)" or "DECIDE(1)" or "READ".
func (o Op) String() string {
	s := o.Method.String()
	hasArg, hasLabel := o.Method.TakesArg(), o.Method.TakesLabel()
	switch {
	case hasArg && hasLabel:
		return s + "(" + o.Arg.String() + ", " + strconv.Itoa(o.Label) + ")"
	case hasArg:
		return s + "(" + o.Arg.String() + ")"
	case hasLabel:
		return s + "(" + strconv.Itoa(o.Label) + ")"
	default:
		return s
	}
}

// Read returns a register read operation.
func Read() Op { return Op{Method: MethodRead} }

// Write returns a register write operation storing v.
func Write(v Value) Op { return Op{Method: MethodWrite, Arg: v} }

// Propose returns a PROPOSE(v) operation for consensus and (n,k)-SA
// objects.
func Propose(v Value) Op { return Op{Method: MethodPropose, Arg: v} }

// ProposeAt returns a PROPOSE(v, i) operation for n-PAC objects.
func ProposeAt(v Value, i int) Op {
	return Op{Method: MethodProposeAt, Arg: v, Label: i}
}

// Decide returns a DECIDE(i) operation for n-PAC objects.
func Decide(i int) Op { return Op{Method: MethodDecide, Label: i} }

// ProposeC returns a PROPOSEC(v) operation for (n,m)-PAC objects.
func ProposeC(v Value) Op { return Op{Method: MethodProposeC, Arg: v} }

// ProposeP returns a PROPOSEP(v, i) operation for (n,m)-PAC objects.
func ProposeP(v Value, i int) Op {
	return Op{Method: MethodProposeP, Arg: v, Label: i}
}

// DecideP returns a DECIDEP(i) operation for (n,m)-PAC objects.
func DecideP(i int) Op { return Op{Method: MethodDecideP, Label: i} }

// ProposeK returns a PROPOSE(v, k) operation for O'_n collection
// objects.
func ProposeK(v Value, k int) Op {
	return Op{Method: MethodProposeK, Arg: v, Label: k}
}

// Enqueue returns an ENQUEUE(v) operation for FIFO queues.
func Enqueue(v Value) Op { return Op{Method: MethodEnqueue, Arg: v} }

// Dequeue returns a DEQUEUE operation for FIFO queues.
func Dequeue() Op { return Op{Method: MethodDequeue} }

// FetchAdd returns a FETCH_ADD(v) operation for counters.
func FetchAdd(v Value) Op { return Op{Method: MethodFetchAdd, Arg: v} }

// TestAndSet returns a TEST_AND_SET operation.
func TestAndSet() Op { return Op{Method: MethodTestAndSet} }

package value_test

import (
	"testing"
	"testing/quick"

	"setagree/internal/value"
)

func TestSentinelStrings(t *testing.T) {
	t.Parallel()
	cases := []struct {
		v    value.Value
		want string
	}{
		{value.None, "NIL"},
		{value.Bottom, "⊥"},
		{value.Done, "done"},
		{0, "0"},
		{-3, "-3"},
		{42, "42"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int64(tc.v), got, tc.want)
		}
	}
}

func TestIsSentinel(t *testing.T) {
	t.Parallel()
	for _, v := range []value.Value{value.None, value.Bottom, value.Done} {
		if !v.IsSentinel() {
			t.Errorf("%s not sentinel", v)
		}
	}
	f := func(raw int32) bool {
		return !value.Value(raw).IsSentinel() // all int32-range values are application values
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelsDistinct(t *testing.T) {
	t.Parallel()
	if value.None == value.Bottom || value.Bottom == value.Done || value.None == value.Done {
		t.Fatal("sentinels collide")
	}
}

func TestMethodNames(t *testing.T) {
	t.Parallel()
	cases := map[value.Method]string{
		value.MethodRead:       "READ",
		value.MethodWrite:      "WRITE",
		value.MethodPropose:    "PROPOSE",
		value.MethodProposeAt:  "PROPOSE_AT",
		value.MethodDecide:     "DECIDE",
		value.MethodProposeC:   "PROPOSE_C",
		value.MethodProposeP:   "PROPOSE_P",
		value.MethodDecideP:    "DECIDE_P",
		value.MethodProposeK:   "PROPOSE_K",
		value.MethodEnqueue:    "ENQUEUE",
		value.MethodDequeue:    "DEQUEUE",
		value.MethodFetchAdd:   "FETCH_ADD",
		value.MethodTestAndSet: "TEST_AND_SET",
	}
	for m, want := range cases {
		if !m.Valid() {
			t.Errorf("%s invalid", want)
		}
		if got := m.String(); got != want {
			t.Errorf("Method(%d).String() = %q, want %q", m, got, want)
		}
	}
	if value.Method(0).Valid() || value.Method(200).Valid() {
		t.Error("invalid methods reported valid")
	}
	if got := value.Method(200).String(); got != "METHOD(200)" {
		t.Errorf("invalid method string = %q", got)
	}
}

func TestMethodShapes(t *testing.T) {
	t.Parallel()
	// Every method's arg/label shape, pinned.
	type shape struct{ arg, label bool }
	cases := map[value.Method]shape{
		value.MethodRead:       {false, false},
		value.MethodWrite:      {true, false},
		value.MethodPropose:    {true, false},
		value.MethodProposeAt:  {true, true},
		value.MethodDecide:     {false, true},
		value.MethodProposeC:   {true, false},
		value.MethodProposeP:   {true, true},
		value.MethodDecideP:    {false, true},
		value.MethodProposeK:   {true, true},
		value.MethodEnqueue:    {true, false},
		value.MethodDequeue:    {false, false},
		value.MethodFetchAdd:   {true, false},
		value.MethodTestAndSet: {false, false},
	}
	for m, want := range cases {
		if m.TakesArg() != want.arg || m.TakesLabel() != want.label {
			t.Errorf("%s: TakesArg=%v TakesLabel=%v, want %+v", m, m.TakesArg(), m.TakesLabel(), want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	t.Parallel()
	cases := []struct {
		op   value.Op
		want string
	}{
		{value.Read(), "READ"},
		{value.Write(5), "WRITE(5)"},
		{value.Propose(3), "PROPOSE(3)"},
		{value.ProposeAt(5, 2), "PROPOSE_AT(5, 2)"},
		{value.Decide(1), "DECIDE(1)"},
		{value.ProposeC(7), "PROPOSE_C(7)"},
		{value.ProposeP(7, 3), "PROPOSE_P(7, 3)"},
		{value.DecideP(3), "DECIDE_P(3)"},
		{value.ProposeK(9, 4), "PROPOSE_K(9, 4)"},
		{value.Enqueue(1), "ENQUEUE(1)"},
		{value.Dequeue(), "DEQUEUE"},
		{value.FetchAdd(2), "FETCH_ADD(2)"},
		{value.TestAndSet(), "TEST_AND_SET"},
	}
	for _, tc := range cases {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("Op.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestOpConstructorsFillFields(t *testing.T) {
	t.Parallel()
	op := value.ProposeAt(9, 3)
	if op.Method != value.MethodProposeAt || op.Arg != 9 || op.Label != 3 {
		t.Fatalf("op = %+v", op)
	}
	op = value.Decide(2)
	if op.Method != value.MethodDecide || op.Label != 2 {
		t.Fatalf("op = %+v", op)
	}
}

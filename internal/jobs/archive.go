package jobs

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// ArchivePolicy bounds a long-lived store's hot footprint: finished
// jobs' payloads (events, result, DOT, the submission spec) are
// gzipped into Dir and their hot working directories removed, and the
// JSONL journal is rewritten to one line per job whenever it outgrows
// JournalMax — with archived jobs' specs dropped from the rewrite,
// since the archive carries them. Archival is strictly an eviction:
// every read (ReadResult, ReadEvents, ReadJobFile) transparently falls
// back to the archive, and recovery after kill -9 replays archived
// jobs like any other terminal job.
type ArchivePolicy struct {
	// Dir is the archive root; "" disables payload archival (journal
	// compaction still applies when JournalMax is set).
	Dir string
	// JournalMax compacts the journal when its byte size exceeds this
	// (0 = never compact).
	JournalMax int64
	// MaxAge keeps a finished job hot for this long after its last
	// transition (0 = archive at the first sweep). Keeping recent jobs
	// hot keeps their SSE replay a plain file tail.
	MaxAge time.Duration
}

// ArchiveStats summarizes one Sweep.
type ArchiveStats struct {
	// Archived is the number of jobs moved to the archive this sweep.
	Archived int
	// Compacted reports whether the journal was rewritten.
	Compacted bool
	// JournalBytes and ArchiveBytes are the post-sweep sizes.
	JournalBytes int64
	ArchiveBytes int64
}

// SetArchive installs the archival policy and reconciles on-disk state:
// leftover half-written archive entries (".tmp" directories a crash
// abandoned) are removed, completed archive entries mark their jobs
// archived, and hot directories a crash left behind after archival are
// deleted. Call once after Open, before serving traffic.
func (s *Store) SetArchive(p ArchivePolicy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.archive = p
	if p.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(p.Dir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(p.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			// A sweep died mid-copy; the hot directory is still the
			// source of truth.
			if err := os.RemoveAll(filepath.Join(p.Dir, e.Name())); err != nil {
				return err
			}
			continue
		}
		if j, ok := s.jobs[e.Name()]; ok {
			j.Archived = true
			// A sweep died between the archive rename and the hot
			// removal; the archive is complete, so finish the eviction.
			if err := os.RemoveAll(s.jobDir(j.ID)); err != nil {
				return err
			}
		}
	}
	s.archiveBytes = dirBytes(p.Dir)
	return nil
}

// Sweep archives every eligible finished job and compacts the journal
// if it exceeds the policy's bound. Sweep is safe to call concurrently
// with serving (archival copies are made outside the store lock;
// terminal jobs' files are immutable) but callers should serialize
// sweeps with each other — the daemon runs one sweep loop.
func (s *Store) Sweep() (ArchiveStats, error) {
	var stats ArchiveStats
	s.mu.Lock()
	p := s.archive
	var candidates []*Job
	if p.Dir != "" {
		now := time.Now().UTC()
		for _, j := range s.jobs {
			if j.State.Terminal() && !j.Archived && now.Sub(j.Updated) >= p.MaxAge {
				candidates = append(candidates, j)
			}
		}
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a].ID < candidates[b].ID })
	specs := make(map[string][]byte, len(candidates))
	for _, j := range candidates {
		specs[j.ID] = j.Spec
	}
	s.mu.Unlock()

	for _, j := range candidates {
		if err := s.archiveJob(j.ID, specs[j.ID]); err != nil {
			return stats, fmt.Errorf("jobs: archiving %s: %w", j.ID, err)
		}
		s.mu.Lock()
		j.Archived = true
		j.Spec = nil // the archive's spec.json.gz is the copy of record
		err := s.appendLocked(j, false)
		s.mu.Unlock()
		if err != nil {
			return stats, err
		}
		stats.Archived++
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if p.Dir != "" {
		s.archiveBytes = dirBytes(p.Dir)
	}
	if p.JournalMax > 0 {
		if size := s.journalBytesLocked(); size > p.JournalMax {
			if err := s.compactLocked(); err != nil {
				return stats, err
			}
			stats.Compacted = true
		}
	}
	stats.JournalBytes = s.journalBytesLocked()
	stats.ArchiveBytes = s.archiveBytes
	return stats, nil
}

// archiveJob copies one finished job's payloads into the archive:
// every regular file of the hot directory (events.jsonl, result.json,
// graph.dot, ...) gzipped, plus the submission spec, written to a
// ".tmp" staging directory that is atomically renamed into place
// before the hot directory is removed — so a crash at any point leaves
// either the hot copy or a complete archive, never a torn one.
func (s *Store) archiveJob(id string, spec []byte) error {
	dst := filepath.Join(s.archive.Dir, id)
	tmp := dst + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	hot := s.jobDir(id)
	entries, err := os.ReadDir(hot)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	for _, e := range entries {
		// Checkpoints exist to resume interrupted runs; a finished job's
		// checkpoint is dead weight and is dropped, not archived.
		if !e.Type().IsRegular() || e.Name() == "checkpoint.ckpt" {
			continue
		}
		if err := gzipFile(filepath.Join(hot, e.Name()), filepath.Join(tmp, e.Name()+".gz")); err != nil {
			return err
		}
	}
	if len(spec) > 0 {
		if err := gzipBytes(spec, filepath.Join(tmp, "spec.json.gz")); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return os.RemoveAll(hot)
}

func gzipFile(src, dst string) error {
	buf, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return gzipBytes(buf, dst)
}

func gzipBytes(buf []byte, dst string) error {
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compactLocked rewrites the journal to its minimal form — one line
// per job in ID order, specs retained only for unarchived jobs — via
// the temp + fsync + rename discipline, then reopens the append
// handle. Caller holds s.mu.
func (s *Store) compactLocked() error {
	if s.journal == nil {
		return errors.New("jobs: store closed")
	}
	path := filepath.Join(s.dir, "journal.jsonl")
	tmp, err := os.CreateTemp(s.dir, ".journal-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		rec := *j
		if j.Archived {
			rec.Spec = nil
		}
		buf, err := json.Marshal(&rec)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(append(buf, '\n')); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// The old handle's inode is gone; all future appends go to the
	// compacted file.
	s.journal.Close()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.journal = nil
		return err
	}
	s.journal = f
	return nil
}

// journalBytesLocked returns the journal's current size. Caller holds
// s.mu.
func (s *Store) journalBytesLocked() int64 {
	info, err := os.Stat(filepath.Join(s.dir, "journal.jsonl"))
	if err != nil {
		return 0
	}
	return info.Size()
}

// Sizes returns the journal's byte size and the archive's total byte
// size (as of the last sweep), the bounded-footprint evidence GET
// /jobs reports.
func (s *Store) Sizes() (journalBytes, archiveBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalBytesLocked(), s.archiveBytes
}

// dirBytes sums the regular files under dir (one level of job
// subdirectories).
func dirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// ReadJobFile returns the named payload file of a job, transparently
// decompressing from the archive when the job has been evicted from
// the hot directory.
func (s *Store) ReadJobFile(id, name string) ([]byte, error) {
	if buf, err := os.ReadFile(filepath.Join(s.jobDir(id), name)); err == nil {
		return buf, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	s.mu.Lock()
	dir := s.archive.Dir
	s.mu.Unlock()
	if dir == "" {
		return nil, fmt.Errorf("jobs: %s/%s: %w", id, name, os.ErrNotExist)
	}
	f, err := os.Open(filepath.Join(dir, id, name+".gz"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// ReadEvents returns the job's full JSONL event stream, hot or
// archived.
func (s *Store) ReadEvents(id string) ([]byte, error) {
	return s.ReadJobFile(id, "events.jsonl")
}

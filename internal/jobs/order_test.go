package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestClaimOrderAcrossIDRollover pins the FIFO bugfix: job IDs compare
// by number, so claiming and listing keep submission order when the
// counter passes 999999 and IDs grow a seventh digit ("job-1000000"
// sorts before "job-999999" as a string but after it as a job).
func TestClaimOrderAcrossIDRollover(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.nextID = 999998 // white-box: fast-forward to the rollover boundary
	var want []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit("k", nil)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, j.ID)
	}
	if want[1] != "job-999999" || want[2] != "job-1000000" {
		t.Fatalf("rollover IDs = %v, want job-999999 then job-1000000", want)
	}

	list := s.List()
	for i, j := range list {
		if j.ID != want[i] {
			t.Fatalf("List order %v, want %v", ids(list), want)
		}
	}
	for i, id := range want {
		j, ok, err := s.Claim()
		if err != nil || !ok {
			t.Fatal(ok, err)
		}
		if j.ID != id {
			t.Fatalf("claim %d = %s, want %s (FIFO broken at rollover)", i, j.ID, id)
		}
	}

	// The order survives journal replay too.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if j, err := s2.Submit("k", nil); err != nil || idNumber(j.ID) != 1000002 {
		t.Fatalf("post-replay submit = %v, %v; want job-1000002", j.ID, err)
	}
}

func ids(jobs []Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

// TestRetryAfterDrainRate pins the backpressure hint: 1s with no drain
// history, backlog/rate under a steady drain, and both clamps.
func TestRetryAfterDrainRate(t *testing.T) {
	t.Parallel()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	clock := time.Unix(1000, 0)
	s.now = func() time.Time { return clock }

	// Empty history: the optimistic minimum.
	if got := s.RetryAfter(); got != 1 {
		t.Errorf("RetryAfter with no history = %d, want 1", got)
	}

	// Steady drain: 10 pending jobs claimed 2 seconds apart (0.5/s),
	// leaving 10 more pending → hint = ceil(10 / 0.5) = 20s.
	for i := 0; i < 20; i++ {
		if _, err := s.Submit("k", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		clock = clock.Add(2 * time.Second)
		if _, ok, err := s.Claim(); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
	if got := s.RetryAfter(); got != 20 {
		t.Errorf("RetryAfter under steady drain = %d, want 20", got)
	}

	// Stale samples age out of the window: after 10 idle minutes the
	// estimator is back to the no-history fallback.
	clock = clock.Add(10 * time.Minute)
	if got := s.RetryAfter(); got != 1 {
		t.Errorf("RetryAfter after history aged out = %d, want 1", got)
	}

	// Fast drain clamps low: 9 claims 1ms apart → huge rate → 1s.
	for i := 0; i < 9; i++ {
		clock = clock.Add(time.Millisecond)
		if _, ok, err := s.Claim(); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
	if got := s.RetryAfter(); got != 1 {
		t.Errorf("RetryAfter under fast drain = %d, want 1", got)
	}

	// Slow drain clamps high: a trickle (2 drains 50s apart against a
	// rebuilt backlog) pins at 30.
	for i := 0; i < 40; i++ {
		if _, err := s.Submit("k", nil); err != nil {
			t.Fatal(err)
		}
	}
	clock = clock.Add(10 * time.Minute) // age out the fast-drain burst
	if _, ok, _ := s.Claim(); !ok {
		t.Fatal("claim failed")
	}
	clock = clock.Add(50 * time.Second)
	if _, ok, _ := s.Claim(); !ok {
		t.Fatal("claim failed")
	}
	if got := s.RetryAfter(); got != 30 {
		t.Errorf("RetryAfter under trickle drain = %d, want 30 (clamp)", got)
	}
}

// TestCrashRequeueAttemptAndErrorSemantics is the kill-9 satellite: a
// worker that dies between Claim's journaled transition and any
// further progress leaves a running job on disk. Reopening the
// directory (exactly the state a SIGKILLed daemon leaves — the journal
// is fsynced per transition, so no flush is pending) must requeue it
// exactly once without touching Attempt; the next Claim increments
// Attempt; and an Error recorded by a failed attempt must not survive
// a later successful Done transition, in memory or across replay.
func TestCrashRequeueAttemptAndErrorSemantics(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	job, err := s1.Submit("k", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	claimed, ok, err := s1.Claim()
	if err != nil || !ok || claimed.Attempt != 1 {
		t.Fatalf("claim: %+v %v %v", claimed, ok, err)
	}
	// Crash: no Close, no further transitions. The open journal handle
	// of s1 is the dead process's; we never use s1 again.

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != Pending {
		t.Fatalf("orphaned job state = %s, want pending", got.State)
	}
	if got.Attempt != 1 {
		t.Errorf("recovery changed Attempt to %d; only Claim may increment it", got.Attempt)
	}
	if got.Spec == nil {
		t.Errorf("requeued job lost its spec")
	}
	if n := journalStateCount(t, dir, job.ID, Pending); n != 2 {
		t.Errorf("journal has %d pending records (submit + requeue), want 2 — the job was requeued %d times", n, n-1)
	}

	// Second attempt fails; the runner requeues it with the error
	// recorded (the pool does this for retryable failures).
	re, ok, err := s2.Claim()
	if err != nil || !ok || re.Attempt != 2 {
		t.Fatalf("reclaim: %+v %v %v", re, ok, err)
	}
	if _, err := s2.Transition(job.ID, Pending, "attempt 2: worker lost"); err != nil {
		t.Fatal(err)
	}
	if j, _ := s2.Get(job.ID); j.Error == "" {
		t.Fatal("failed attempt's error not recorded")
	}

	// Third attempt succeeds: Done must clear the stale error.
	fin, ok, err := s2.Claim()
	if err != nil || !ok || fin.Attempt != 3 {
		t.Fatalf("final claim: %+v %v %v", fin, ok, err)
	}
	done, err := s2.Transition(job.ID, Done, "")
	if err != nil {
		t.Fatal(err)
	}
	if done.Error != "" {
		t.Errorf("Done job kept stale error %q from a failed attempt", done.Error)
	}

	// And the cleared error survives replay.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	final, err := s3.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.Error != "" || final.Attempt != 3 {
		t.Errorf("replayed job = %+v, want done, no error, attempt 3", final)
	}
	if n := journalStateCount(t, dir, job.ID, Pending); n != 3 {
		t.Errorf("journal has %d pending records, want 3 (submit + crash requeue + failed-attempt requeue)", n)
	}
}

// journalStateCount counts journal records for id in the given state.
func journalStateCount(t *testing.T, dir, id string, state State) int {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(string(buf), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec Job
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		if rec.ID == id && rec.State == state {
			n++
		}
	}
	return n
}

package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newArchivedStore(t *testing.T, p ArchivePolicy) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if p.Dir == "" {
		p.Dir = filepath.Join(dir, "archive")
	}
	if err := s.SetArchive(p); err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func finishJob(t *testing.T, s *Store, spec, events, result string) Job {
	t.Helper()
	j, err := s.Submit("explore", []byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Claim(); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := os.WriteFile(s.EventsPath(j.ID), []byte(events), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteResult(j.ID, []byte(result)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transition(j.ID, Done, ""); err != nil {
		t.Fatal(err)
	}
	return j
}

// TestSweepArchivesFinishedJobs: a sweep gzips a finished job's
// payloads into the archive, removes the hot directory, and every read
// path still serves the same bytes.
func TestSweepArchivesFinishedJobs(t *testing.T) {
	t.Parallel()
	s, _ := newArchivedStore(t, ArchivePolicy{})
	const events = "{\"type\":\"explore.start\"}\n{\"type\":\"explore.done\"}\n"
	const result = `{"solved":true}`
	j := finishJob(t, s, `{"protocol":"algorithm2"}`, events, result)

	// A job still pending must survive the sweep untouched.
	live, err := s.Submit("explore", []byte(`{"live":true}`))
	if err != nil {
		t.Fatal(err)
	}

	stats, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 1 {
		t.Fatalf("archived %d jobs, want 1", stats.Archived)
	}
	if stats.ArchiveBytes <= 0 {
		t.Errorf("archive bytes = %d, want > 0", stats.ArchiveBytes)
	}
	if _, err := os.Stat(s.Dir(j.ID)); !os.IsNotExist(err) {
		t.Errorf("hot dir still present after archival: err=%v", err)
	}
	got, err := s.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Archived {
		t.Error("job not marked archived")
	}
	if buf, err := s.ReadResult(j.ID); err != nil || string(buf) != result {
		t.Errorf("ReadResult = %q, %v", buf, err)
	}
	if buf, err := s.ReadEvents(j.ID); err != nil || string(buf) != events {
		t.Errorf("ReadEvents = %q, %v", buf, err)
	}
	if buf, err := s.ReadJobFile(j.ID, "spec.json"); err != nil || string(buf) != `{"protocol":"algorithm2"}` {
		t.Errorf("archived spec = %q, %v", buf, err)
	}
	if got, err := s.Get(live.ID); err != nil || got.Archived || got.State != Pending {
		t.Errorf("live job disturbed by sweep: %+v, %v", got, err)
	}
	// Sweeping again is a no-op.
	stats, err = s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 0 {
		t.Errorf("second sweep archived %d jobs", stats.Archived)
	}
}

// TestSweepMaxAge: jobs younger than MaxAge stay hot.
func TestSweepMaxAge(t *testing.T) {
	t.Parallel()
	s, _ := newArchivedStore(t, ArchivePolicy{MaxAge: time.Hour})
	j := finishJob(t, s, `{}`, "e\n", `{}`)
	stats, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 0 {
		t.Fatalf("archived a job %v old with MaxAge=1h", time.Hour)
	}
	if _, err := os.Stat(s.EventsPath(j.ID)); err != nil {
		t.Errorf("young job's events missing: %v", err)
	}
}

// TestSweepCompactsJournal: once the journal outgrows JournalMax, a
// sweep rewrites it to one line per job, dropping archived jobs'
// specs, and the store replays correctly from the compacted journal.
func TestSweepCompactsJournal(t *testing.T) {
	t.Parallel()
	s, dir := newArchivedStore(t, ArchivePolicy{JournalMax: 1})
	bigSpec := `{"pad":"` + strings.Repeat("x", 512) + `"}`
	for i := 0; i < 5; i++ {
		finishJob(t, s, bigSpec, "e\n", `{"i":`+string(rune('0'+i))+`}`)
	}
	before, _ := s.Sizes()
	stats, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Compacted {
		t.Fatal("journal not compacted despite JournalMax=1")
	}
	if stats.JournalBytes >= before {
		t.Errorf("journal grew across compaction: %d -> %d", before, stats.JournalBytes)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(buf)), "\n")
	if len(lines) != 5 {
		t.Fatalf("compacted journal has %d lines, want 5", len(lines))
	}
	if strings.Contains(string(buf), "xxxx") {
		t.Error("archived job's spec survived compaction")
	}

	// Appends after compaction land in the new journal; a reopen sees
	// both the compacted state and post-compaction writes.
	j, err := s.Submit("explore", []byte(`{"post":"compact"}`))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Get(j.ID); err != nil || got.State != Pending {
		t.Errorf("post-compaction job lost on reopen: %+v, %v", got, err)
	}
	if jobs := s2.List(); len(jobs) != 6 {
		t.Errorf("reopened store has %d jobs, want 6", len(jobs))
	}
	for _, got := range s2.List() {
		if got.ID != j.ID && !got.Archived {
			t.Errorf("job %s lost archived flag on replay", got.ID)
		}
	}
}

// TestArchiveRecovery: after a simulated crash (reopen without Close,
// plus a half-written .tmp archive entry and a leftover hot dir for a
// completed archive entry), SetArchive reconciles and reads still work.
func TestArchiveRecovery(t *testing.T) {
	t.Parallel()
	s, dir := newArchivedStore(t, ArchivePolicy{})
	j := finishJob(t, s, `{}`, "recovered-events\n", `{"ok":1}`)
	if _, err := s.Sweep(); err != nil {
		t.Fatal(err)
	}
	arDir := filepath.Join(dir, "archive")

	// Simulate a crash mid-sweep on a *different* job: a torn .tmp
	// staging dir must be discarded, and the leftover hot dir (from a
	// crash between rename and hot-removal) must be cleaned up.
	j2 := finishJob(t, s, `{}`, "torn\n", `{}`)
	if err := os.MkdirAll(filepath.Join(arDir, j2.ID+".tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(arDir, j.ID), 0o755); err != nil && !os.IsExist(err) {
		t.Fatal(err)
	}
	hotLeftover := s.Dir(j.ID)
	if err := os.MkdirAll(hotLeftover, 0o755); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.SetArchive(ArchivePolicy{Dir: arDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(arDir, j2.ID+".tmp")); !os.IsNotExist(err) {
		t.Error("torn .tmp archive entry survived recovery")
	}
	if _, err := os.Stat(hotLeftover); !os.IsNotExist(err) {
		t.Error("leftover hot dir of archived job survived recovery")
	}
	got, err := s2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Archived || got.State != Done {
		t.Errorf("recovered job: %+v", got)
	}
	if buf, err := s2.ReadEvents(j.ID); err != nil || string(buf) != "recovered-events\n" {
		t.Errorf("archived events after recovery = %q, %v", buf, err)
	}
	// j2's archive was torn, so its hot copy is still authoritative.
	if buf, err := s2.ReadEvents(j2.ID); err != nil || string(buf) != "torn\n" {
		t.Errorf("hot events after recovery = %q, %v", buf, err)
	}
}

// TestSizes: both sizes are observable and move in the right
// direction across a sweep.
func TestSizes(t *testing.T) {
	t.Parallel()
	s, _ := newArchivedStore(t, ArchivePolicy{})
	journal0, archive0 := s.Sizes()
	if journal0 != 0 || archive0 != 0 {
		t.Fatalf("fresh store sizes: %d, %d", journal0, archive0)
	}
	finishJob(t, s, `{}`, strings.Repeat("event\n", 100), `{}`)
	journal1, _ := s.Sizes()
	if journal1 <= 0 {
		t.Fatal("journal empty after submissions")
	}
	if _, err := s.Sweep(); err != nil {
		t.Fatal(err)
	}
	_, archive2 := s.Sizes()
	if archive2 <= 0 {
		t.Error("archive empty after sweep")
	}
}

// Package jobs is a disk-backed job store with a worker pool, the
// persistence layer under the dacd daemon. Jobs move through
// pending → running → done/failed/canceled; every transition is one
// appended line of a JSONL journal, so the full store state is
// recovered by replaying the journal (last line per job wins). A job
// found running during recovery was orphaned by a crash and is
// re-queued as pending — its working directory (checkpoint, events
// file) survives on disk, so a checkpoint-aware runner resumes it
// rather than starting over.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// State is a job lifecycle state.
type State string

const (
	// Pending jobs wait in the queue (submitted, crash-recovered, or
	// requeued by a draining pool).
	Pending State = "pending"
	// Running jobs are claimed by a pool worker.
	Running State = "running"
	// Done jobs finished; their result is on disk (see ReadResult).
	Done State = "done"
	// Failed jobs hit a hard error, recorded in Job.Error.
	Failed State = "failed"
	// Canceled jobs were cancelled by the user before finishing.
	Canceled State = "canceled"
)

// Terminal reports whether a job in state s will never run again.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Canceled
}

// Job is one unit of work. The Spec payload is opaque to the store;
// the runner registered for Kind interprets it.
type Job struct {
	// ID is the store-assigned identifier ("job-000000", "job-000001", ...).
	ID string `json:"id"`
	// Kind selects the runner (e.g. "explore").
	Kind string `json:"kind"`
	// Spec is the runner's input, verbatim from submission.
	Spec json.RawMessage `json:"spec,omitempty"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Error holds the failure message of a Failed job.
	Error string `json:"error,omitempty"`
	// Attempt counts how many times the job has been claimed; an
	// attempt > 1 means the job was resumed after a crash, drain, or
	// requeue.
	Attempt int `json:"attempt,omitempty"`
	// Archived marks a finished job whose payloads were gzipped into
	// the archive directory and whose hot working directory was
	// removed (see ArchivePolicy). Reads fall back transparently.
	Archived bool `json:"archived,omitempty"`
	// Updated is the wall time of the last recorded transition.
	Updated time.Time `json:"updated"`
}

// ErrUnknownJob is returned for operations on an ID the store has
// never seen.
var ErrUnknownJob = errors.New("jobs: unknown job")

// ErrTerminal is returned when a transition is requested on a job
// already in a terminal state.
var ErrTerminal = errors.New("jobs: job already finished")

// ErrQueueFull is returned by Submit when the pending queue is at its
// LimitPending bound. The submission is not journaled; the client
// should back off and retry.
var ErrQueueFull = errors.New("jobs: pending queue full")

// Store is the disk-backed job table. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	journal *os.File
	jobs    map[string]*Job
	nextID  int
	limit   int
	// drains records when pending jobs recently left the queue (claims
	// and cancellations), the history behind RetryAfter. now is the
	// clock, swappable in tests.
	drains []time.Time
	now    func() time.Time

	archive      ArchivePolicy
	archiveBytes int64
}

// Open loads (or initialises) the store rooted at dir: the journal is
// replayed, and any job left running by a crashed process is requeued
// as pending with its working directory intact.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, jobs: make(map[string]*Job), now: time.Now}
	path := filepath.Join(dir, "journal.jsonl")
	if buf, err := os.ReadFile(path); err == nil {
		for _, line := range strings.Split(string(buf), "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var rec Job
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				// A torn final line (kill -9 mid-append) is expected;
				// anything the last complete lines established still
				// stands. Replay keeps going: last parsable line wins.
				continue
			}
			if j, ok := s.jobs[rec.ID]; ok {
				if rec.Spec == nil {
					rec.Spec = j.Spec // state-only records omit the spec
				}
			}
			cp := rec
			s.jobs[rec.ID] = &cp
			if n := idNumber(rec.ID); n >= s.nextID {
				s.nextID = n + 1
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.journal = f
	// Crash recovery: orphaned running jobs go back to the queue.
	for _, j := range s.jobs {
		if j.State == Running {
			j.State = Pending
			if err := s.appendLocked(j, false); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return s, nil
}

func idNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return -1
	}
	return n
}

// Close releases the journal file. In-memory state stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// appendLocked writes one journal line for j (with the spec only on
// first submission, withSpec) and fsyncs it, so an acknowledged
// transition survives a crash. Caller holds s.mu.
func (s *Store) appendLocked(j *Job, withSpec bool) error {
	if s.journal == nil {
		return errors.New("jobs: store closed")
	}
	rec := *j
	if !withSpec {
		rec.Spec = nil
	}
	buf, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	if _, err := s.journal.Write(append(buf, '\n')); err != nil {
		return err
	}
	return s.journal.Sync()
}

// LimitPending bounds the number of pending jobs Submit accepts
// (0 = unlimited). Crash-recovered requeues are exempt: recovery never
// drops work, so a restarted store may briefly hold more pending jobs
// than the limit.
func (s *Store) LimitPending(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = n
}

// QueueStats returns the current pending-job count and the Submit
// limit (0 = unlimited).
func (s *Store) QueueStats() (pending, limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingLocked(), s.limit
}

func (s *Store) pendingLocked() int {
	n := 0
	for _, j := range s.jobs {
		if j.State == Pending {
			n++
		}
	}
	return n
}

// Submit enqueues a new job and returns its durable record. When a
// LimitPending bound is set and the queue is at it, Submit rejects the
// job with ErrQueueFull before journaling anything.
func (s *Store) Submit(kind string, spec json.RawMessage) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.limit > 0 {
		if pending := s.pendingLocked(); pending >= s.limit {
			return Job{}, fmt.Errorf("%w: %d pending (limit %d)", ErrQueueFull, pending, s.limit)
		}
	}
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", s.nextID),
		Kind:    kind,
		Spec:    append(json.RawMessage(nil), spec...),
		State:   Pending,
		Updated: time.Now().UTC(),
	}
	if err := os.MkdirAll(s.jobDir(j.ID), 0o755); err != nil {
		return Job{}, err
	}
	if err := s.appendLocked(j, true); err != nil {
		return Job{}, err
	}
	s.nextID++
	s.jobs[j.ID] = j
	return *j, nil
}

// Get returns a copy of the job, or ErrUnknownJob.
func (s *Store) Get(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return *j, nil
}

// List returns all jobs sorted by ID (submission order). IDs compare
// by their number, not as strings: "job-1000000" sorts after
// "job-999999", so the table keeps submission order across the
// six-digit rollover.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(a, b int) bool { return idBefore(out[a].ID, out[b].ID) })
	return out
}

// idBefore orders job IDs by their number (submission order), falling
// back to the string compare only for IDs the store never minted.
func idBefore(a, b string) bool {
	na, nb := idNumber(a), idNumber(b)
	if na != nb {
		return na < nb
	}
	return a < b
}

// Claim atomically moves the oldest pending job (lowest ID number — a
// string compare would break FIFO at the job-1000000 rollover) to
// running and returns it; ok is false when the queue is empty.
func (s *Store) Claim() (Job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pick *Job
	for _, j := range s.jobs {
		if j.State == Pending && (pick == nil || idBefore(j.ID, pick.ID)) {
			pick = j
		}
	}
	if pick == nil {
		return Job{}, false, nil
	}
	prev := *pick
	pick.State = Running
	pick.Attempt++
	pick.Updated = time.Now().UTC()
	if err := s.appendLocked(pick, false); err != nil {
		*pick = prev
		return Job{}, false, err
	}
	s.drainLocked()
	return *pick, true, nil
}

// Transition records a state change. Terminal jobs reject further
// transitions (ErrTerminal), except the idempotent no-op of setting
// the same terminal state again.
func (s *Store) Transition(id string, to State, errMsg string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.State.Terminal() {
		if j.State == to {
			return *j, nil
		}
		return *j, fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.State)
	}
	prev := *j
	j.State = to
	j.Error = errMsg
	j.Updated = time.Now().UTC()
	if err := s.appendLocked(j, false); err != nil {
		*j = prev
		return Job{}, err
	}
	if prev.State == Pending && to != Pending {
		s.drainLocked() // e.g. a pending job canceled: the queue shrank
	}
	return *j, nil
}

// drainLocked records one pending job leaving the queue. The history
// is capped; RetryAfter only ever looks at the recent window.
func (s *Store) drainLocked() {
	const keep = 64
	s.drains = append(s.drains, s.now())
	if len(s.drains) > keep {
		s.drains = s.drains[len(s.drains)-keep:]
	}
}

// RetryAfter bounds for the backpressure hint.
const (
	retryAfterMin    = 1
	retryAfterMax    = 30
	retryAfterWindow = time.Minute
)

// RetryAfter estimates, in whole seconds clamped to [1, 30], how long
// a submitter rejected with ErrQueueFull should wait before retrying:
// the time to drain the current backlog at the recently observed drain
// rate (claims plus cancellations of pending jobs over the last
// minute). With no drain history — an idle or freshly started daemon —
// it falls back to the optimistic minimum of 1 second.
func (s *Store) RetryAfter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	recent := s.drains
	for len(recent) > 0 && now.Sub(recent[0]) > retryAfterWindow {
		recent = recent[1:]
	}
	if len(recent) < 2 {
		return retryAfterMin
	}
	span := recent[len(recent)-1].Sub(recent[0])
	if span <= 0 {
		return retryAfterMin
	}
	rate := float64(len(recent)-1) / span.Seconds() // drains per second
	secs := int(math.Ceil(float64(s.pendingLocked()) / rate))
	if secs < retryAfterMin {
		return retryAfterMin
	}
	if secs > retryAfterMax {
		return retryAfterMax
	}
	return secs
}

func (s *Store) jobDir(id string) string {
	return filepath.Join(s.dir, "jobs", id)
}

// Dir returns the job's working directory (checkpoint, events file,
// result live here; it survives crashes and requeues).
func (s *Store) Dir(id string) string { return s.jobDir(id) }

// CheckpointPath is where the job's runner keeps its checkpoint.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.jobDir(id), "checkpoint.ckpt")
}

// EventsPath is the job's JSONL event stream (what dacd serves over
// SSE).
func (s *Store) EventsPath(id string) string {
	return filepath.Join(s.jobDir(id), "events.jsonl")
}

// ResultPath is the job's result document.
func (s *Store) ResultPath(id string) string {
	return filepath.Join(s.jobDir(id), "result.json")
}

// WriteResult atomically persists a job's result document
// (temp + fsync + rename, same discipline as checkpoints).
func (s *Store) WriteResult(id string, result []byte) error {
	path := s.ResultPath(id)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".result-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(result); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadResult returns the job's result document, hot or archived.
func (s *Store) ReadResult(id string) ([]byte, error) {
	return s.ReadJobFile(id, "result.json")
}

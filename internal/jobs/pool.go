package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrCancelRequested is the cancellation cause a user cancel injects
// into a running job's context; the pool records the job as Canceled.
var ErrCancelRequested = errors.New("jobs: canceled by request")

// errDraining is the cancellation cause Drain injects; the job goes
// back to Pending so a restarted pool resumes it from its checkpoint.
var errDraining = errors.New("jobs: pool draining")

// Runner executes one job. It runs with the job's working directory
// already provisioned (store.Dir/CheckpointPath/EventsPath) and must
// honour ctx: stop at the next safe point, persist a checkpoint if it
// supports one, and return an error wrapping ctx's. The returned bytes
// become the job's result document on success.
type Runner func(ctx context.Context, store *Store, job Job) ([]byte, error)

// Pool pulls pending jobs from a Store and runs them on a fixed set of
// worker goroutines, with per-job cancellation and a graceful drain
// that distinguishes "user canceled this job" (terminal) from "the
// daemon is shutting down" (job requeued for the next process).
type Pool struct {
	store   *Store
	runners map[string]Runner
	wake    chan struct{}

	mu       sync.Mutex
	inflight map[string]context.CancelCauseFunc
	draining bool

	wg   sync.WaitGroup
	stop context.CancelFunc
}

// NewPool starts `workers` goroutines serving the store's queue with
// the given per-kind runners. Jobs of an unregistered kind fail
// immediately. Call Drain to stop.
func NewPool(store *Store, workers int, runners map[string]Runner) *Pool {
	if workers <= 0 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		store:    store,
		runners:  runners,
		wake:     make(chan struct{}, 1),
		inflight: make(map[string]context.CancelCauseFunc),
		stop:     cancel,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(ctx)
	}
	return p
}

// Submit enqueues a job and nudges an idle worker.
func (p *Pool) Submit(kind string, spec []byte) (Job, error) {
	j, err := p.store.Submit(kind, spec)
	if err != nil {
		return Job{}, err
	}
	p.poke()
	return j, nil
}

func (p *Pool) poke() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Cancel cancels a job: a pending job is marked Canceled directly, a
// running one has its context cancelled with ErrCancelRequested (the
// worker records the terminal state once the runner unwinds).
func (p *Pool) Cancel(id string) (Job, error) {
	p.mu.Lock()
	cancel := p.inflight[id]
	p.mu.Unlock()
	if cancel != nil {
		cancel(ErrCancelRequested)
		return p.store.Get(id)
	}
	j, err := p.store.Get(id)
	if err != nil {
		return Job{}, err
	}
	if j.State.Terminal() {
		return j, nil
	}
	return p.store.Transition(id, Canceled, "")
}

// Drain stops the pool gracefully: workers stop claiming, every
// in-flight job's context is cancelled with a shutdown cause (runners
// checkpoint and unwind; the jobs return to Pending), and Drain blocks
// until all workers exit or ctx expires.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	p.draining = true
	for _, cancel := range p.inflight {
		cancel(errDraining)
	}
	p.mu.Unlock()
	p.stop()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain: %w", ctx.Err())
	}
}

func (p *Pool) worker(ctx context.Context) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		draining := p.draining
		p.mu.Unlock()
		if draining || ctx.Err() != nil {
			return
		}
		job, ok, err := p.store.Claim()
		if err != nil || !ok {
			select {
			case <-p.wake:
			case <-ctx.Done():
				return
			}
			continue
		}
		p.runOne(ctx, job)
		p.poke() // more work may be queued behind this job
	}
}

// runOne executes one claimed job and records its terminal state (or
// requeues it on drain).
func (p *Pool) runOne(ctx context.Context, job Job) {
	runner, ok := p.runners[job.Kind]
	if !ok {
		p.store.Transition(job.ID, Failed, fmt.Sprintf("no runner for kind %q", job.Kind))
		return
	}
	jctx, cancel := context.WithCancelCause(ctx)
	p.mu.Lock()
	p.inflight[job.ID] = cancel
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.inflight, job.ID)
		p.mu.Unlock()
		cancel(nil)
	}()

	result, err := runner(jctx, p.store, job)
	cause := context.Cause(jctx)
	switch {
	case err == nil:
		if werr := p.store.WriteResult(job.ID, result); werr != nil {
			p.store.Transition(job.ID, Failed, fmt.Sprintf("persisting result: %v", werr))
			return
		}
		p.store.Transition(job.ID, Done, "")
	case errors.Is(cause, ErrCancelRequested):
		p.store.Transition(job.ID, Canceled, err.Error())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Shutdown (drain or parent context): back to the queue; the
		// runner left a checkpoint, so the next claim resumes.
		p.store.Transition(job.ID, Pending, "")
	default:
		p.store.Transition(job.ID, Failed, err.Error())
	}
}

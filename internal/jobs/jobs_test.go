package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Store, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s, error %q)", id, j.State, want, j.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStoreLifecycle(t *testing.T) {
	t.Parallel()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a, err := s.Submit("explore", json.RawMessage(`{"alg":2}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit("sweep", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID || a.State != Pending || b.State != Pending {
		t.Fatalf("bad submissions: %+v %+v", a, b)
	}
	if info, err := os.Stat(s.Dir(a.ID)); err != nil || !info.IsDir() {
		t.Fatalf("job dir %s not provisioned: %v", s.Dir(a.ID), err)
	}

	// FIFO claim order, attempt accounting.
	c1, ok, err := s.Claim()
	if err != nil || !ok || c1.ID != a.ID || c1.State != Running || c1.Attempt != 1 {
		t.Fatalf("first claim: %+v ok=%v err=%v", c1, ok, err)
	}
	c2, ok, _ := s.Claim()
	if !ok || c2.ID != b.ID {
		t.Fatalf("second claim: %+v ok=%v", c2, ok)
	}
	if _, ok, _ := s.Claim(); ok {
		t.Fatal("claim on empty queue succeeded")
	}

	if err := s.WriteResult(a.ID, []byte(`{"verdict":"solved"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transition(a.ID, Done, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transition(b.ID, Failed, "boom"); err != nil {
		t.Fatal(err)
	}
	if res, err := s.ReadResult(a.ID); err != nil || string(res) != `{"verdict":"solved"}` {
		t.Fatalf("result: %q, %v", res, err)
	}

	// Terminal states reject further transitions (idempotent same-state
	// excepted).
	if _, err := s.Transition(a.ID, Canceled, ""); !errors.Is(err, ErrTerminal) {
		t.Fatalf("terminal transition: %v", err)
	}
	if _, err := s.Transition(a.ID, Done, ""); err != nil {
		t.Fatalf("idempotent terminal transition: %v", err)
	}
	if _, err := s.Get("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v", err)
	}
	if got := s.List(); len(got) != 2 || got[0].ID != a.ID || got[1].ID != b.ID {
		t.Fatalf("list: %+v", got)
	}
}

// TestJournalRecovery kills a store (no clean shutdown) with one job
// running and a torn trailing journal line, then reopens: the running
// job is requeued as pending with its spec and attempt count intact,
// terminal jobs stay terminal, and new IDs don't collide.
func TestJournalRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Submit("explore", json.RawMessage(`{"n":4}`))
	done, _ := s.Submit("explore", nil)
	if _, ok, _ := s.Claim(); !ok { // a → running
		t.Fatal("claim failed")
	}
	if _, ok, _ := s.Claim(); !ok { // done → running
		t.Fatal("claim failed")
	}
	if _, err := s.Transition(done.ID, Done, ""); err != nil {
		t.Fatal(err)
	}
	// Simulate kill -9: no Close, plus a torn half-line at the tail.
	f, err := os.OpenFile(dir+"/journal.jsonl", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"job-00`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ja, err := s2.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ja.State != Pending {
		t.Errorf("orphaned job state = %s, want pending", ja.State)
	}
	if string(ja.Spec) != `{"n":4}` {
		t.Errorf("spec lost across recovery: %q", ja.Spec)
	}
	if ja.Attempt != 1 {
		t.Errorf("attempt = %d, want 1 preserved", ja.Attempt)
	}
	if jd, _ := s2.Get(done.ID); jd.State != Done {
		t.Errorf("done job state = %s, want done", jd.State)
	}
	c, _ := s2.Submit("explore", nil)
	if c.ID == a.ID || c.ID == done.ID {
		t.Errorf("recovered store reissued ID %s", c.ID)
	}
	// The requeued job is claimable and its attempt keeps counting.
	rc, ok, err := s2.Claim()
	if err != nil || !ok || rc.ID != a.ID || rc.Attempt != 2 {
		t.Fatalf("reclaim after recovery: %+v ok=%v err=%v", rc, ok, err)
	}
}

func TestPoolRunsAndFails(t *testing.T) {
	t.Parallel()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := NewPool(s, 2, map[string]Runner{
		"echo": func(ctx context.Context, st *Store, j Job) ([]byte, error) {
			return j.Spec, nil
		},
		"bomb": func(ctx context.Context, st *Store, j Job) ([]byte, error) {
			return nil, errors.New("kaboom")
		},
	})
	defer p.Drain(context.Background())

	var ids []string
	for i := 0; i < 5; i++ {
		j, err := p.Submit("echo", []byte(fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	bomb, _ := p.Submit("bomb", nil)
	alien, _ := p.Submit("warp", nil)

	for i, id := range ids {
		waitState(t, s, id, Done)
		if res, err := s.ReadResult(id); err != nil || string(res) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Errorf("job %s result %q, %v", id, res, err)
		}
	}
	if j := waitState(t, s, bomb.ID, Failed); j.Error != "kaboom" {
		t.Errorf("failed job error = %q", j.Error)
	}
	if j := waitState(t, s, alien.ID, Failed); j.Error == "" {
		t.Error("unregistered kind failed without an error message")
	}
}

// blockingRunner parks until its context is cancelled (signalling
// started), then returns the context's error — the shape of a
// checkpoint-aware runner interrupted mid-run.
func blockingRunner(started chan<- string) Runner {
	return func(ctx context.Context, st *Store, j Job) ([]byte, error) {
		started <- j.ID
		<-ctx.Done()
		return nil, fmt.Errorf("interrupted: %w", ctx.Err())
	}
}

func TestPoolCancelIsTerminal(t *testing.T) {
	t.Parallel()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	started := make(chan string, 1)
	p := NewPool(s, 1, map[string]Runner{"block": blockingRunner(started)})
	defer p.Drain(context.Background())

	run, _ := p.Submit("block", nil)
	queued, _ := p.Submit("block", nil) // pending: the only worker is busy
	<-started
	// Cancelling a pending job needs no worker cooperation.
	if j, err := p.Cancel(queued.ID); err != nil || j.State != Canceled {
		t.Fatalf("pending cancel: %+v, %v", j, err)
	}
	// Cancelling the running job unwinds its runner.
	if _, err := p.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, run.ID, Canceled)
	// Cancelling an already-canceled job is a no-op.
	if j, err := p.Cancel(queued.ID); err != nil || j.State != Canceled {
		t.Fatalf("repeated cancel: %+v, %v", j, err)
	}
}

// TestPoolDrainRequeuesAndResumes is the crash/shutdown round trip:
// drain interrupts a running job, which goes back to pending (not
// canceled), and a new pool on the same store picks it up and finishes
// it on the second attempt.
func TestPoolDrainRequeuesAndResumes(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 1)
	resumable := func(ctx context.Context, st *Store, j Job) ([]byte, error) {
		if j.Attempt == 1 {
			started <- j.ID
			<-ctx.Done()
			return nil, fmt.Errorf("interrupted: %w", ctx.Err())
		}
		return []byte(`"resumed"`), nil
	}
	p := NewPool(s, 1, map[string]Runner{"resumable": resumable})
	j, _ := p.Submit("resumable", nil)
	<-started
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(j.ID); got.State != Pending {
		t.Fatalf("drained job state = %s, want pending", got.State)
	}
	s.Close()

	// "Restart the daemon": fresh store + pool over the same directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	p2 := NewPool(s2, 1, map[string]Runner{"resumable": resumable})
	defer p2.Drain(context.Background())
	if got := waitState(t, s2, j.ID, Done); got.Attempt != 2 {
		t.Errorf("attempt = %d, want 2", got.Attempt)
	}
	if res, err := s2.ReadResult(j.ID); err != nil || string(res) != `"resumed"` {
		t.Errorf("result %q, %v", res, err)
	}
}

// TestSubmitQueueBound pins the back-pressure contract: with a
// LimitPending bound, Submit rejects overflow with ErrQueueFull
// (journaling nothing), claims free capacity, and crash-recovered
// requeues are exempt from the bound.
func TestSubmitQueueBound(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.LimitPending(2)

	if _, err := s.Submit("k", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("k", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("k", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Submit: %v, want ErrQueueFull", err)
	}
	if pending, limit := s.QueueStats(); pending != 2 || limit != 2 {
		t.Fatalf("QueueStats = (%d, %d), want (2, 2)", pending, limit)
	}
	// A rejected submission must not burn an ID or a journal line.
	if n := len(s.List()); n != 2 {
		t.Fatalf("store holds %d jobs after rejection, want 2", n)
	}

	// Claiming frees a slot.
	if _, ok, err := s.Claim(); err != nil || !ok {
		t.Fatalf("Claim: %v %v", ok, err)
	}
	if _, err := s.Submit("k", nil); err != nil {
		t.Fatalf("Submit after Claim: %v", err)
	}

	// Crash recovery: the orphaned running job is requeued even though
	// the queue is already at its bound.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.LimitPending(2)
	if pending, _ := s2.QueueStats(); pending != 3 {
		t.Fatalf("recovered pending = %d, want 3 (requeue exempt from bound)", pending)
	}
	if _, err := s2.Submit("k", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over recovered bound: %v, want ErrQueueFull", err)
	}
}

package bg

import (
	"fmt"

	"setagree/internal/value"
)

// Winnow is the input-winnowing core of the BG simulation [2]: N
// callers (simulators) push their inputs through n safe agreement
// instances so that the N inputs are narrowed to at most n agreed
// values — one per instance — on which all callers agree. A caller
// that crashes inside a doorway blocks at most its one current
// instance, so with f crashed callers at least n-f instances resolve.
type Winnow struct {
	instances []*SafeAgreement
}

// NewWinnow creates a winnowing array of n instances for up to procs
// callers.
func NewWinnow(n, procs int) *Winnow {
	w := &Winnow{instances: make([]*SafeAgreement, n)}
	for j := range w.instances {
		w.instances[j] = New(procs)
	}
	return w
}

// Instances returns the number of safe agreement instances.
func (w *Winnow) Instances() int { return len(w.instances) }

// Propose pushes caller i's input through every instance in order.
// Between any Enter and Exit the caller is inside exactly one doorway,
// the invariant the BG crash-cost argument needs.
func (w *Winnow) Propose(i int, input value.Value) error {
	for j, sa := range w.instances {
		if err := sa.Propose(i, input); err != nil {
			return fmt.Errorf("instance %d: %w", j, err)
		}
	}
	return nil
}

// Resolved returns the currently agreed value of every resolved
// instance (index -> value).
func (w *Winnow) Resolved() map[int]value.Value {
	out := make(map[int]value.Value)
	for j, sa := range w.instances {
		if v, ok := sa.Resolve(); ok {
			out[j] = v
		}
	}
	return out
}

// Instance exposes one underlying safe agreement (for crash-injection
// tests and custom schedules).
func (w *Winnow) Instance(j int) *SafeAgreement { return w.instances[j] }

// KSetFromSafeAgreement solves (k-1)-resilient k-set agreement among
// procs processes using k safe agreement instances — the classic BG
// application. Each process proposes its input to every instance and
// then spins until *some* instance resolves, deciding that value:
//
//   - at most k distinct decisions (one agreed value per instance);
//   - validity (agreed values are proposed inputs);
//   - termination with up to k-1 crashes: each crashed process blocks
//     at most one doorway, so at least one of the k instances resolves
//     for every correct process.
type KSetFromSafeAgreement struct {
	w *Winnow
}

// NewKSet creates the protocol object for procs processes and
// agreement bound k.
func NewKSet(k, procs int) *KSetFromSafeAgreement {
	return &KSetFromSafeAgreement{w: NewWinnow(k, procs)}
}

// Propose runs process i's whole protocol: push the input through the
// instances, then wait for the first resolution. maxSpins bounds the
// wait (0 means spin forever, the theoretical protocol); if the bound
// expires — possible only when >= k processes crashed in doorways —
// ok is false.
func (p *KSetFromSafeAgreement) Propose(i int, input value.Value, maxSpins int) (v value.Value, ok bool, err error) {
	for j := 0; j < p.w.Instances(); j++ {
		sa := p.w.Instance(j)
		if err := sa.Propose(i, input); err != nil {
			return value.None, false, err
		}
		// Eager check: deciding early never hurts.
		if v, ok := sa.Resolve(); ok {
			return v, true, nil
		}
	}
	for spin := 0; maxSpins == 0 || spin < maxSpins; spin++ {
		for j := 0; j < p.w.Instances(); j++ {
			if v, ok := p.w.Instance(j).Resolve(); ok {
				return v, true, nil
			}
		}
	}
	return value.None, false, nil
}

// UnderlyingWinnow exposes the protocol's winnowing array (crash
// injection in tests, schedule experiments).
func (p *KSetFromSafeAgreement) UnderlyingWinnow() *Winnow { return p.w }

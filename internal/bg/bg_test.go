package bg_test

import (
	"errors"
	"sync"
	"testing"

	"setagree/internal/bg"
	"setagree/internal/value"
)

func TestSafeAgreementSolo(t *testing.T) {
	t.Parallel()
	sa := bg.New(3)
	if _, ok := sa.Resolve(); ok {
		t.Fatal("resolved before any propose")
	}
	if err := sa.Propose(2, 7); err != nil {
		t.Fatal(err)
	}
	v, ok := sa.Resolve()
	if !ok || v != 7 {
		t.Fatalf("resolve = %s, %v", v, ok)
	}
}

func TestSafeAgreementAgreementAndValidity(t *testing.T) {
	t.Parallel()
	for round := 0; round < 50; round++ {
		const n = 6
		sa := bg.New(n)
		var wg sync.WaitGroup
		for i := 1; i <= n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := sa.Propose(i, value.Value(100+i)); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
		v, ok := sa.Resolve()
		if !ok {
			t.Fatal("all proposes complete but unresolved")
		}
		if v < 101 || v > 100+n {
			t.Fatalf("agreed value %s was not proposed", v)
		}
		// Stability: every further resolve returns the same value.
		for i := 0; i < 3; i++ {
			v2, ok := sa.Resolve()
			if !ok || v2 != v {
				t.Fatalf("resolution changed: %s -> %s", v, v2)
			}
		}
	}
}

// TestSafeAgreementDoorwayBlocks pins the defining weakness: a process
// stuck inside the doorway (Enter without Exit) keeps the instance
// unresolved forever; once it exits, resolution appears.
func TestSafeAgreementDoorwayBlocks(t *testing.T) {
	t.Parallel()
	sa := bg.New(3)
	if err := sa.Propose(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := sa.Enter(2, 6); err != nil {
		t.Fatal(err)
	}
	if _, ok := sa.Resolve(); ok {
		t.Fatal("resolved while a process is inside the doorway")
	}
	if err := sa.Exit(2); err != nil {
		t.Fatal(err)
	}
	v, ok := sa.Resolve()
	if !ok {
		t.Fatal("unresolved after doorway emptied")
	}
	if v != 5 && v != 6 {
		t.Fatalf("agreed on unproposed %s", v)
	}
}

func TestSafeAgreementErrors(t *testing.T) {
	t.Parallel()
	sa := bg.New(2)
	if err := sa.Propose(0, 1); !errors.Is(err, bg.ErrBadProcess) {
		t.Fatalf("process 0: %v", err)
	}
	if err := sa.Propose(3, 1); !errors.Is(err, bg.ErrBadProcess) {
		t.Fatalf("process 3: %v", err)
	}
	if err := sa.Propose(1, value.Bottom); !errors.Is(err, bg.ErrBadProcess) {
		t.Fatalf("sentinel: %v", err)
	}
	if err := sa.Exit(1); !errors.Is(err, bg.ErrExitWithoutEnter) {
		t.Fatalf("exit without enter: %v", err)
	}
	if err := sa.Enter(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := sa.Enter(1, 4); !errors.Is(err, bg.ErrDoubleEnter) {
		t.Fatalf("double enter: %v", err)
	}
}

// TestSafeAgreementFirstCommitWins checks the core mechanism: once a
// proposal commits, later doorway visitors retire, so the committed
// value persists.
func TestSafeAgreementFirstCommitWins(t *testing.T) {
	t.Parallel()
	sa := bg.New(3)
	if err := sa.Propose(3, 9); err != nil { // commits at level 2
		t.Fatal(err)
	}
	if err := sa.Propose(1, 4); err != nil { // sees the commit, retires
		t.Fatal(err)
	}
	v, ok := sa.Resolve()
	if !ok || v != 9 {
		t.Fatalf("resolve = %s, want 9 (first committed)", v)
	}
}

// TestWinnowNarrowsInputs: N callers, n instances — at most n agreed
// values, all of them inputs, agreed by everyone.
func TestWinnowNarrowsInputs(t *testing.T) {
	t.Parallel()
	const procs, n = 8, 3
	w := bg.NewWinnow(n, procs)
	var wg sync.WaitGroup
	for i := 1; i <= procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := w.Propose(i, value.Value(10*i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	resolved := w.Resolved()
	if len(resolved) != n {
		t.Fatalf("%d instances resolved, want %d", len(resolved), n)
	}
	for j, v := range resolved {
		if v < 10 || v > 10*procs || v%10 != 0 {
			t.Fatalf("instance %d agreed on unproposed %s", j, v)
		}
	}
}

// TestWinnowCrashBlocksOneInstance: a caller stuck in one doorway
// blocks exactly that instance.
func TestWinnowCrashBlocksOneInstance(t *testing.T) {
	t.Parallel()
	const procs, n = 4, 3
	w := bg.NewWinnow(n, procs)
	// Caller 1 crashes inside instance 1's doorway (after finishing
	// instance 0).
	if err := w.Instance(0).Propose(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Instance(1).Enter(1, 100); err != nil {
		t.Fatal(err)
	}
	// The others run to completion.
	var wg sync.WaitGroup
	for i := 2; i <= procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := w.Propose(i, value.Value(100*i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	resolved := w.Resolved()
	if len(resolved) != n-1 {
		t.Fatalf("%d instances resolved, want %d (one blocked)", len(resolved), n-1)
	}
	if _, blocked := resolved[1]; blocked {
		t.Fatal("the doorway-blocked instance resolved")
	}
}

// TestKSetFromSafeAgreement: the classic BG application under full
// concurrency — at most k distinct decisions, all inputs.
func TestKSetFromSafeAgreement(t *testing.T) {
	t.Parallel()
	const procs, k = 7, 3
	p := bg.NewKSet(k, procs)
	decisions := make([]value.Value, procs)
	var wg sync.WaitGroup
	for i := 1; i <= procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ok, err := p.Propose(i, value.Value(1000+i), 0)
			if err != nil || !ok {
				t.Errorf("process %d: ok=%v err=%v", i, ok, err)
				return
			}
			decisions[i-1] = v
		}(i)
	}
	wg.Wait()
	distinct := map[value.Value]bool{}
	for i, d := range decisions {
		if d < 1001 || d > 1000+procs {
			t.Fatalf("process %d decided unproposed %s", i+1, d)
		}
		distinct[d] = true
	}
	if len(distinct) > k {
		t.Fatalf("%d distinct decisions exceed k=%d", len(distinct), k)
	}
}

// TestKSetToleratesKMinusOneCrashes: k-1 processes crash inside
// distinct doorways; every correct process still decides.
func TestKSetToleratesKMinusOneCrashes(t *testing.T) {
	t.Parallel()
	const procs, k = 6, 3
	p := bg.NewKSet(k, procs)
	w := bgKSetWinnow(p)
	// Crash processes 1 and 2 inside the doorways of instances 0 and 1.
	if err := w.Instance(0).Enter(1, 11); err != nil {
		t.Fatal(err)
	}
	if err := w.Instance(1).Enter(2, 12); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 3; i <= procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ok, err := p.Propose(i, value.Value(10+i), 0)
			if err != nil || !ok {
				t.Errorf("process %d: ok=%v err=%v", i, ok, err)
				return
			}
			if v.IsSentinel() {
				t.Errorf("process %d decided sentinel", i)
			}
		}(i)
	}
	wg.Wait()
}

// bgKSetWinnow reaches into the protocol for crash injection.
func bgKSetWinnow(p *bg.KSetFromSafeAgreement) *bg.Winnow { return p.UnderlyingWinnow() }

// Package bg implements the Borowsky–Gafni simulation primitives that
// underpin the set-consensus partial order the paper builds on ([2, 6]):
// the safe agreement object, its input-winnowing pattern, and the
// classic (k-1)-resilient k-set agreement protocol built from k safe
// agreement instances.
//
// Safe agreement is consensus with a weaker liveness guarantee: the
// Propose operation is wait-free, and Resolve returns the agreed value
// once no process is inside the *doorway* (the first half of a
// propose). A process that crashes inside the doorway can block one
// instance forever — which is exactly the cost the BG simulation pays
// per crashed simulator.
package bg

import (
	"errors"
	"fmt"
	"sync"

	"setagree/internal/value"
)

// Safe agreement failure modes.
var (
	// ErrBadProcess reports a process index outside [1, n].
	ErrBadProcess = errors.New("bg: process index out of range")
	// ErrDoubleEnter reports a second doorway entry by one process.
	ErrDoubleEnter = errors.New("bg: process already entered the doorway")
	// ErrExitWithoutEnter reports an Exit with no matching Enter.
	ErrExitWithoutEnter = errors.New("bg: doorway exit without enter")
)

// levels of the classic snapshot-based safe agreement protocol.
const (
	levelOut     uint8 = 0 // retired or never entered
	levelDoorway uint8 = 1 // inside the doorway (unsafe window)
	levelIn      uint8 = 2 // proposal committed
)

// SafeAgreement is an n-process safe agreement instance. It is safe
// for concurrent use; each process i (1-based) proposes at most once.
//
// The implementation is the standard one over single-writer registers:
// Propose writes (v, level=1), collects, and downgrades to level 0 if
// it saw a committed (level 2) proposal, else commits at level 2.
// Resolve collects and, if the doorway is empty, returns the committed
// proposal of the smallest process index. Agreement holds because the
// first process to commit is seen by every later doorway visitor.
type SafeAgreement struct {
	mu     sync.Mutex
	vals   []value.Value
	levels []uint8
}

// New creates a safe agreement instance for n processes.
func New(n int) *SafeAgreement {
	s := &SafeAgreement{
		vals:   make([]value.Value, n),
		levels: make([]uint8, n),
	}
	for i := range s.vals {
		s.vals[i] = value.None
	}
	return s
}

// N returns the process bound.
func (s *SafeAgreement) N() int { return len(s.vals) }

// Propose submits process i's value: Enter immediately followed by
// Exit. It is wait-free.
func (s *SafeAgreement) Propose(i int, v value.Value) error {
	if err := s.Enter(i, v); err != nil {
		return err
	}
	return s.Exit(i)
}

// Enter is the doorway half of a propose: it publishes (v, level 1).
// A process that stops between Enter and Exit models a crash inside
// the doorway — the instance may stay unresolved forever.
func (s *SafeAgreement) Enter(i int, v value.Value) error {
	if i < 1 || i > len(s.vals) {
		return fmt.Errorf("process %d of %d: %w", i, len(s.vals), ErrBadProcess)
	}
	if v.IsSentinel() {
		return fmt.Errorf("bg: sentinel proposal %s: %w", v, ErrBadProcess)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.levels[i-1] != levelOut || s.vals[i-1] != value.None {
		return fmt.Errorf("process %d: %w", i, ErrDoubleEnter)
	}
	s.vals[i-1] = v
	s.levels[i-1] = levelDoorway
	return nil
}

// Exit completes the propose: collect, then commit at level 2 unless a
// committed proposal was seen (then retire at level 0).
func (s *SafeAgreement) Exit(i int) error {
	if i < 1 || i > len(s.vals) {
		return fmt.Errorf("process %d of %d: %w", i, len(s.vals), ErrBadProcess)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.levels[i-1] != levelDoorway {
		return fmt.Errorf("process %d: %w", i, ErrExitWithoutEnter)
	}
	sawCommitted := false
	for j, l := range s.levels {
		if j != i-1 && l == levelIn {
			sawCommitted = true
			break
		}
	}
	if sawCommitted {
		s.levels[i-1] = levelOut
	} else {
		s.levels[i-1] = levelIn
	}
	return nil
}

// Resolve returns the agreed value once the doorway is empty and some
// proposal committed. ok is false while the instance is unresolved:
// either no propose has completed yet, or a process is (possibly
// forever) inside the doorway.
func (s *SafeAgreement) Resolve() (v value.Value, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	committed := -1
	for j, l := range s.levels {
		switch l {
		case levelDoorway:
			return value.None, false
		case levelIn:
			if committed == -1 {
				committed = j
			}
		}
	}
	if committed == -1 {
		return value.None, false
	}
	return s.vals[committed], true
}

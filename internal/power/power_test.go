package power_test

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"setagree/internal/power"
)

func TestConsensusPower(t *testing.T) {
	t.Parallel()
	for _, m := range []int{1, 2, 3, 5} {
		seq := power.Consensus(m)
		for k := 1; k <= 6; k++ {
			if got, want := seq.At(k), k*m; got != want {
				t.Errorf("m=%d: n_%d = %d, want %d", m, k, got, want)
			}
		}
	}
}

// TestMinAgreementFormula pins concrete values of the Chaudhuri–Reiners
// level formula.
func TestMinAgreementFormula(t *testing.T) {
	t.Parallel()
	cases := []struct{ n, k, procs, want int }{
		{2, 1, 2, 1}, // 2 procs, one 2-consensus: consensus
		{2, 1, 3, 2}, // 3 procs, 2-consensus objects: best is 2-set agreement
		{2, 1, 4, 2}, // 4 procs: two groups
		{2, 1, 5, 3}, // ceil(5/2)
		{3, 2, 3, 2}, // (3,2)-SA native
		{3, 2, 6, 4}, // two full groups
		{3, 2, 7, 5}, // 2*2 + min(1,2)
		{3, 2, 8, 6}, // 2*2 + min(2,2)
		{2, 5, 2, 2}, // k > n: capped at N (trivial)
		{0, 2, 9, 2}, // unbounded 2-SA: always 2
		{0, 2, 1, 1}, // one process: trivial
		{4, 1, 0, 0}, // no processes
	}
	for _, tc := range cases {
		if got := power.MinAgreement(tc.n, tc.k, tc.procs); got != tc.want {
			t.Errorf("MinAgreement(%d,%d,%d) = %d, want %d", tc.n, tc.k, tc.procs, got, tc.want)
		}
	}
}

// TestSAPowerInvertsMinAgreement is the defining Galois property: At(j)
// is the largest N with MinAgreement(n, k, N) <= j.
func TestSAPowerInvertsMinAgreement(t *testing.T) {
	t.Parallel()
	f := func(nRaw, kRaw, jRaw uint8) bool {
		n := 1 + int(nRaw%6)
		k := 1 + int(kRaw%4)
		j := 1 + int(jRaw%10)
		best := power.SA(n, k).At(j)
		if best == power.Infinite {
			t.Fatalf("finite object (%d,%d) reported infinite power", n, k)
		}
		if power.MinAgreement(n, k, best) > j {
			t.Errorf("(%d,%d): At(%d)=%d but MinAgreement=%d > j",
				n, k, j, best, power.MinAgreement(n, k, best))
		}
		if power.MinAgreement(n, k, best+1) <= j {
			t.Errorf("(%d,%d): At(%d)=%d not maximal (N+1 also solves)",
				n, k, j, best)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestSAUnboundedPower(t *testing.T) {
	t.Parallel()
	twoSA := power.SA(power.Infinite, 2)
	if got := twoSA.At(1); got != 1 {
		t.Errorf("2-SA consensus number = %d, want 1", got)
	}
	for j := 2; j <= 5; j++ {
		if got := twoSA.At(j); got != power.Infinite {
			t.Errorf("2-SA n_%d = %d, want ∞", j, got)
		}
	}
}

// TestConsensusEqualsSAK1 cross-checks the two derivations: the
// m-consensus object is the (m,1)-SA object.
func TestConsensusEqualsSAK1(t *testing.T) {
	t.Parallel()
	for m := 1; m <= 5; m++ {
		if !power.Equal(power.Consensus(m), power.SA(m, 1), 8) {
			t.Errorf("Consensus(%d) != SA(%d,1): %s vs %s", m, m,
				power.Format(power.Consensus(m), 8), power.Format(power.SA(m, 1), 8))
		}
	}
}

func TestObjectOPower(t *testing.T) {
	t.Parallel()
	seq := power.ObjectO(3)
	if seq.At(1) != 3 {
		t.Errorf("n_1 = %d, want 3 (Observation 6.2)", seq.At(1))
	}
	if !strings.Contains(seq.Describe(), "(4,3)-PAC") {
		t.Errorf("Describe() = %q", seq.Describe())
	}
}

func TestCanSolve(t *testing.T) {
	t.Parallel()
	if !power.CanSolve(2, 1, 4, 2) {
		t.Error("4 procs with 2-consensus must solve 2-set agreement")
	}
	if power.CanSolve(2, 1, 5, 2) {
		t.Error("5 procs with 2-consensus must not solve 2-set agreement")
	}
}

func TestMaxSequence(t *testing.T) {
	t.Parallel()
	m := power.Max("combo", power.Consensus(2), power.SA(power.Infinite, 2))
	if got := m.At(1); got != 2 {
		t.Errorf("combo n_1 = %d, want 2", got)
	}
	if got := m.At(3); got != power.Infinite {
		t.Errorf("combo n_3 = %d, want ∞", got)
	}
	if m.Describe() != "combo" {
		t.Errorf("Describe() = %q", m.Describe())
	}
}

func TestEqualAndDominates(t *testing.T) {
	t.Parallel()
	a, b := power.Consensus(3), power.Consensus(2)
	if power.Equal(a, b, 5) {
		t.Error("Consensus(3) == Consensus(2)?")
	}
	if !power.Dominates(a, b, 5) {
		t.Error("Consensus(3) must dominate Consensus(2)")
	}
	if power.Dominates(b, a, 5) {
		t.Error("Consensus(2) must not dominate Consensus(3)")
	}
	inf := power.SA(power.Infinite, 2)
	if power.Dominates(a, inf, 5) {
		t.Error("finite sequence dominating an infinite one")
	}
}

func TestPrefixAndFormat(t *testing.T) {
	t.Parallel()
	got := power.Prefix(power.Consensus(2), 4)
	want := []int{2, 4, 6, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Prefix = %v", got)
		}
	}
	s := power.Format(power.SA(power.Infinite, 2), 3)
	if s != "(1, ∞, ∞, ...)" {
		t.Errorf("Format = %q", s)
	}
}

// TestCheckedValidation pins the typed-error surface the collections
// enumerator leans on: every nonsense parameter combination is
// rejected with an error wrapping power.ErrParam.
func TestCheckedValidation(t *testing.T) {
	t.Parallel()
	bad := []struct {
		name string
		err  func() error
	}{
		{"SA n=-1", func() error { _, err := power.SAChecked(-1, 2); return err }},
		{"SA k=0", func() error { _, err := power.SAChecked(2, 0); return err }},
		{"SA k=-3", func() error { _, err := power.SAChecked(3, -3); return err }},
		{"Consensus m=0", func() error { _, err := power.ConsensusChecked(0); return err }},
		{"Consensus m=-2", func() error { _, err := power.ConsensusChecked(-2); return err }},
		{"MinAgreement n=-1", func() error { _, err := power.MinAgreementChecked(-1, 1, 3); return err }},
		{"MinAgreement k=0", func() error { _, err := power.MinAgreementChecked(2, 0, 3); return err }},
		{"ValidateSA k=0", func() error { return power.ValidateSA(2, 0) }},
	}
	for _, tc := range bad {
		err := tc.err()
		if err == nil {
			t.Errorf("%s: accepted invalid parameters", tc.name)
			continue
		}
		if !errors.Is(err, power.ErrParam) {
			t.Errorf("%s: error %v does not wrap ErrParam", tc.name, err)
		}
	}
}

// TestCheckedValidEdges pins that the edge cases the repo relies on —
// the unbounded object (n == Infinite) and the empty system
// (procs == 0) — stay accepted.
func TestCheckedValidEdges(t *testing.T) {
	t.Parallel()
	if seq, err := power.SAChecked(power.Infinite, 2); err != nil {
		t.Errorf("SAChecked(Infinite, 2): %v", err)
	} else if got := seq.At(1); got != 1 {
		t.Errorf("unbounded 2-SA n_1 = %d, want 1", got)
	}
	if got, err := power.MinAgreementChecked(4, 1, 0); err != nil || got != 0 {
		t.Errorf("MinAgreementChecked(4,1,0) = %d, %v; want 0, nil", got, err)
	}
	if got, err := power.MinAgreementChecked(power.Infinite, 2, 9); err != nil || got != 2 {
		t.Errorf("MinAgreementChecked(Infinite,2,9) = %d, %v; want 2, nil", got, err)
	}
	if _, err := power.ConsensusChecked(1); err != nil {
		t.Errorf("ConsensusChecked(1): %v", err)
	}
}

// TestUncheckedPanics pins that the unchecked constructors fail loudly
// (not with silent nonsense) on programmer error.
func TestUncheckedPanics(t *testing.T) {
	t.Parallel()
	mustPanic := func(name string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic on invalid parameters", name)
				return
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, power.ErrParam) {
				t.Errorf("%s: panic value %v does not wrap ErrParam", name, r)
			}
		}()
		f()
	}
	mustPanic("SA(-1,2)", func() { power.SA(-1, 2) })
	mustPanic("SA(2,0)", func() { power.SA(2, 0) })
	mustPanic("Consensus(0)", func() { power.Consensus(0) })
	mustPanic("MinAgreement(2,0,3)", func() { power.MinAgreement(2, 0, 3) })
	mustPanic("MinAgreement(-4,1,0)", func() { power.MinAgreement(-4, 1, 0) })
}

func TestTableRenders(t *testing.T) {
	t.Parallel()
	tbl := power.Table([]power.Sequence{power.Consensus(2), power.SA(power.Infinite, 2)}, 3)
	for _, want := range []string{"2-consensus", "2-SA", "n_1", "∞"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

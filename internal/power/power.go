// Package power implements set-agreement-power arithmetic (§1, §6).
//
// The set agreement power of an object O is the sequence
// (n_1, n_2, ..., n_k, ...) where n_k is the largest number of processes
// for which O and registers solve k-set agreement (∞ when unbounded).
// For the strong set-agreement family the powers are known exactly: by
// the Borowsky–Gafni simulation and the Chaudhuri–Reiners
// characterization of the set-consensus partial order [2, 6], N
// processes using (n,k)-SA objects and registers can solve K-set
// agreement if and only if
//
//	K >= floor(N/n)*k + min(N mod n, k).
//
// With k = 1 (m-consensus objects) this gives K = ceil(N/m), hence the
// k-set agreement number of the m-consensus object is n_k = k*m.
package power

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"setagree/internal/core"
	"setagree/internal/objects"
)

// ErrParam is wrapped by every parameter-validation failure in this
// package. The unchecked constructors (SA, Consensus, MinAgreement)
// panic with it on nonsense parameters — a silent wrong answer from
// power arithmetic poisons every decision built on top — while the
// *Checked variants return it for callers (like the collections
// enumerator) that drive the formulas with generated parameters.
var ErrParam = errors.New("power: invalid parameter")

// Infinite is the n_k value for objects that solve k-set agreement
// among any number of processes. It deliberately equals
// objects.Unbounded so a power entry can parameterize an (n_k,k)-SA
// component directly.
const Infinite = objects.Unbounded

// Sequence is a materializable set agreement power sequence.
type Sequence interface {
	core.Sequence
	// Describe names the object the sequence belongs to.
	Describe() string
}

type funcSeq struct {
	at   func(k int) int
	desc string
}

func (s funcSeq) At(k int) int     { return s.at(k) }
func (s funcSeq) Describe() string { return s.desc }

var _ Sequence = funcSeq{}

// New wraps an arbitrary n_k function as a Sequence.
func New(desc string, at func(k int) int) Sequence {
	return funcSeq{at: at, desc: desc}
}

// ValidateSA reports whether (n, k) names a set-agreement object
// type: k >= 1 agreement slots, and either a process bound n >= 1 or
// n == Infinite for the unbounded object. The error wraps ErrParam.
func ValidateSA(n, k int) error {
	if k < 1 {
		return fmt.Errorf("(%d,%d)-SA: k must be >= 1: %w", n, k, ErrParam)
	}
	if n != Infinite && n < 1 {
		return fmt.Errorf("(%d,%d)-SA: n must be >= 1 or Infinite: %w", n, k, ErrParam)
	}
	return nil
}

// MinAgreement returns the least K such that N processes can solve
// K-set agreement using (n,k)-SA objects and registers: the
// Chaudhuri–Reiners level formula floor(N/n)*k + min(N mod n, k),
// capped at N because N processes always solve N-set agreement
// trivially (each decides its own input). n == Infinite means the
// object serves any number of processes, so K = min(N, k).
// procs <= 0 yields 0 (no processes need no agreement); invalid
// (n, k) panics with ErrParam — use MinAgreementChecked for generated
// parameters.
func MinAgreement(n, k, procs int) int {
	if err := ValidateSA(n, k); err != nil {
		panic(err)
	}
	if procs <= 0 {
		return 0
	}
	if n == Infinite {
		if procs < k {
			return procs
		}
		return k
	}
	r := procs % n
	if r > k {
		r = k
	}
	level := (procs/n)*k + r
	if level > procs {
		return procs
	}
	return level
}

// MinAgreementChecked is MinAgreement with the (n, k) validation
// surfaced as an error instead of a panic.
func MinAgreementChecked(n, k, procs int) (int, error) {
	if err := ValidateSA(n, k); err != nil {
		return 0, err
	}
	return MinAgreement(n, k, procs), nil
}

// CanSolve reports whether N processes can solve K-set agreement using
// (n,k)-SA objects and registers.
func CanSolve(n, k, procs, bigK int) bool {
	return MinAgreement(n, k, procs) <= bigK
}

// SA returns the set agreement power of the strong (n,k)-SA object:
// its j-set agreement number is the largest N with
// MinAgreement(n, k, N) <= j. MinAgreement is non-decreasing in N, and
// the largest such N has the closed form
//
//	max(j, n*floor(j/k) + min(j mod k, n-1))
//
// (full groups of n processes each consume k agreement slots; leftover
// slots admit leftover processes; and j processes are always admitted
// trivially).
//
// Invalid (n, k) panics with ErrParam; use SAChecked for generated
// parameters.
func SA(n, k int) Sequence {
	if err := ValidateSA(n, k); err != nil {
		panic(err)
	}
	desc := objects.NewSetAgreement(n, k).Name()
	return New(desc, func(j int) int {
		if j < 1 {
			return 0
		}
		if n == Infinite {
			if j >= k {
				return Infinite
			}
			return j
		}
		rem := j % k
		if rem > n-1 {
			rem = n - 1
		}
		best := (j/k)*n + rem
		if best < j {
			best = j
		}
		return best
	})
}

// SAChecked is SA with the (n, k) validation surfaced as an error
// instead of a panic.
func SAChecked(n, k int) (Sequence, error) {
	if err := ValidateSA(n, k); err != nil {
		return nil, err
	}
	return SA(n, k), nil
}

// Consensus returns the set agreement power of the m-consensus object:
// n_k = k*m. m < 1 panics with ErrParam; use ConsensusChecked for
// generated parameters.
func Consensus(m int) Sequence {
	if m < 1 {
		panic(fmt.Errorf("%d-consensus: m must be >= 1: %w", m, ErrParam))
	}
	desc := objects.NewConsensus(m).Name()
	return New(desc, func(k int) int {
		if k < 1 {
			return 0
		}
		return k * m
	})
}

// ConsensusChecked is Consensus with the m validation surfaced as an
// error instead of a panic.
func ConsensusChecked(m int) (Sequence, error) {
	if m < 1 {
		return nil, fmt.Errorf("%d-consensus: m must be >= 1: %w", m, ErrParam)
	}
	return Consensus(m), nil
}

// ObjectO returns the default concrete instantiation of the set
// agreement power of O_n = (n+1,n)-PAC used throughout this
// reproduction: n_1 = n (Observation 6.2) and n_k = k*n for k >= 2 (the
// power of the embedded n-consensus component; the paper leaves the
// exact tail abstract — DESIGN.md substitution 3).
func ObjectO(n int) Sequence {
	return New(core.ObjectO(n).Name(), Consensus(n).At)
}

// Max returns the pointwise maximum of sequences — the power of a
// collection of objects used side by side (each level k is served by
// whichever object is strongest there). Infinite entries dominate.
func Max(desc string, seqs ...Sequence) Sequence {
	return New(desc, func(k int) int {
		best := 0
		for _, s := range seqs {
			v := s.At(k)
			if v == Infinite {
				return Infinite
			}
			if v > best {
				best = v
			}
		}
		return best
	})
}

// Equal reports whether two sequences agree on levels 1..upTo.
func Equal(a, b core.Sequence, upTo int) bool {
	for k := 1; k <= upTo; k++ {
		if a.At(k) != b.At(k) {
			return false
		}
	}
	return true
}

// Dominates reports whether a's power is >= b's on every level 1..upTo.
func Dominates(a, b core.Sequence, upTo int) bool {
	for k := 1; k <= upTo; k++ {
		av, bv := a.At(k), b.At(k)
		if av == Infinite {
			continue
		}
		if bv == Infinite || av < bv {
			return false
		}
	}
	return true
}

// Prefix materializes levels 1..upTo of a sequence.
func Prefix(s core.Sequence, upTo int) []int {
	out := make([]int, upTo)
	for k := 1; k <= upTo; k++ {
		out[k-1] = s.At(k)
	}
	return out
}

// Format renders a sequence prefix as "(n, 2n, 3n, ...)" with ∞ for
// Infinite entries.
func Format(s core.Sequence, upTo int) string {
	var b strings.Builder
	b.WriteByte('(')
	for k := 1; k <= upTo; k++ {
		if k > 1 {
			b.WriteString(", ")
		}
		v := s.At(k)
		if v == Infinite {
			b.WriteString("∞")
		} else {
			b.WriteString(strconv.Itoa(v))
		}
	}
	b.WriteString(", ...)")
	return b.String()
}

// Table renders a consensus-hierarchy/power table for cmd/hierarchy.
func Table(rows []Sequence, upTo int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", "object")
	for k := 1; k <= upTo; k++ {
		fmt.Fprintf(&b, "  n_%d", k)
	}
	b.WriteByte('\n')
	for _, s := range rows {
		fmt.Fprintf(&b, "%-24s", s.Describe())
		for k := 1; k <= upTo; k++ {
			v := s.At(k)
			if v == Infinite {
				fmt.Fprintf(&b, "  %4s", "∞")
			} else {
				fmt.Fprintf(&b, "  %4d", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapChunk maps size bytes of f at off read-write and shared, so
// appended bytes reach the page cache without explicit writes and the
// kernel may evict cold chunks under memory pressure — the mechanism
// that makes the arena "spill".
func mapChunk(f *os.File, off int64, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), off, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func unmapChunk(c []byte) error {
	return syscall.Munmap(c)
}

//go:build !unix

package store

import "os"

// mapChunk on platforms without the unix mmap falls back to heap-backed
// chunks: the store still bounds per-level allocation churn, but cold
// chunks cannot be evicted by the kernel. The file is grown alongside
// (Truncate) so disk accounting matches; its bytes are never read back.
func mapChunk(f *os.File, off int64, size int) ([]byte, error) {
	return make([]byte, size), nil
}

func unmapChunk(c []byte) error { return nil }

// Package store is the explorer's disk-backed configuration store: a
// partitioned hash table over mmap'd, append-only arenas. The explorer
// spills everything a level-synchronized BFS only reads back rarely —
// interned configuration keys, per-configuration outcome records, and
// the edge lists of completed levels — while the active frontier stays
// hot in memory.
//
// The store is SCRATCH, not durable state: arena files are truncated on
// Open and removed on Close, and a resumed run rebuilds them from the
// checkpoint container (which remains the single durable artifact).
// Leftover files from a crashed run are therefore harmless.
//
// Concurrency contract: the explorer alternates between an expand phase
// (the table is frozen; Lookup may run from any number of goroutines)
// and a single-threaded merge phase (Intern and Append mutate). The
// store relies on that level discipline instead of locks.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"setagree/internal/obs"
)

// ErrBudget reports that the explorer's live heap exceeded the
// configured in-memory budget at a level barrier.
var ErrBudget = errors.New("store: in-memory budget exceeded")

// Options configures a disk-backed configuration store. The zero value
// disables it (fully in-memory exploration).
type Options struct {
	// Dir is the directory holding the store's arena files; empty
	// disables the store. The directory is created if absent; existing
	// arena files in it are truncated (the store is scratch).
	Dir string
	// Budget, when > 0, bounds the explorer's live heap in bytes,
	// checked at every level barrier: if the heap is still over budget
	// after a forced GC, the run fails with an error wrapping
	// ErrBudget. Zero means no bound.
	Budget int64
	// ChunkBytes overrides the arena chunk size (rounded up to a power
	// of two, minimum 4 KiB; 0 means the 16 MiB default). Small chunks
	// exist for tests that need to exercise chunk-boundary straddling.
	ChunkBytes int64
}

// Enabled reports whether the options select a disk-backed store.
func (o Options) Enabled() bool { return o.Dir != "" }

// ParseFlag parses the CLI form "dir" or "dir:budget" (e.g.
// "./run-store:1.5GB"); see ParseBudget for the budget syntax.
func ParseFlag(s string) (Options, error) {
	if s == "" {
		return Options{}, nil
	}
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		budget, err := ParseBudget(s[i+1:])
		if err != nil {
			return Options{}, fmt.Errorf("store: flag %q: %w", s, err)
		}
		if i == 0 {
			return Options{}, fmt.Errorf("store: flag %q: empty directory", s)
		}
		return Options{Dir: s[:i], Budget: budget}, nil
	}
	return Options{Dir: s}, nil
}

// ParseBudget parses a byte count: a number (decimals allowed) with an
// optional suffix B, K/KB/KiB, M/MB/MiB, or G/GB/GiB. All multiples are
// binary (1K = 1024 bytes).
func ParseBudget(s string) (int64, error) {
	num := strings.TrimRight(s, "BbKkMmGgIi")
	mult := float64(1)
	switch strings.ToUpper(s[len(num):]) {
	case "", "B":
	case "K", "KB", "KIB":
		mult = 1 << 10
	case "M", "MB", "MIB":
		mult = 1 << 20
	case "G", "GB", "GIB":
		mult = 1 << 30
	default:
		return 0, fmt.Errorf("bad byte suffix %q", s[len(num):])
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return int64(v * mult), nil
}

const (
	defaultChunkBytes = 1 << 24 // 16 MiB
	minChunkBytes     = 1 << 12
	numShards         = 256
)

// slot is one open-addressing table entry: the key's full hash, its
// bytes in the key arena, and the interned id. klen == 0 marks an
// empty slot (interned keys are never empty). In-memory index cost:
// 24 B per slot, ≤ 2 slots per key at the 0.75 maximum load factor.
type slot struct {
	hash uint64
	off  int64
	klen uint32
	id   int32
}

type shard struct {
	slots []slot
	n     int
}

// Store owns the three arenas and the partitioned key table. Open one
// per exploration; it is not reusable after Close.
type Store struct {
	dir    string
	budget int64

	// Keys holds the interned configuration keys, Meta the explorer's
	// per-configuration outcome records, Edges its encoded edge lists
	// (checkpoint section format). The explorer appends and decodes;
	// the store only indexes Keys.
	Keys  *Arena
	Meta  *Arena
	Edges *Arena

	shards  [numShards]shard
	count   int
	heapMax *obs.Gauge
}

// Open creates (or truncates) the store's arena files under opts.Dir.
// Metrics go to sink (nil disables them): the store.spilled_bytes
// counter totals bytes appended to the arenas, store.arena_faults
// counts appends/reads that straddled a chunk boundary, and the
// store.heap_bytes_max gauge high-water-marks the heap seen by budget
// checks.
func Open(opts Options, sink *obs.Sink) (*Store, error) {
	if !opts.Enabled() {
		return nil, errors.New("store: no directory configured")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	chunk := opts.ChunkBytes
	if chunk <= 0 {
		chunk = defaultChunkBytes
	}
	if chunk < minChunkBytes {
		chunk = minChunkBytes
	}
	// Round up to a power of two so arena addressing is shift+mask.
	for chunk&(chunk-1) != 0 {
		chunk &= chunk - 1
		chunk <<= 1
	}
	spilled := sink.Counter("store.spilled_bytes")
	faults := sink.Counter("store.arena_faults")
	s := &Store{
		dir:     opts.Dir,
		budget:  opts.Budget,
		heapMax: sink.Gauge("store.heap_bytes_max"),
	}
	for _, a := range []struct {
		dst  **Arena
		name string
	}{{&s.Keys, "keys.arena"}, {&s.Meta, "meta.arena"}, {&s.Edges, "edges.arena"}} {
		ar, err := newArena(filepath.Join(opts.Dir, a.name), chunk, spilled, faults)
		if err != nil {
			s.Close()
			return nil, err
		}
		*a.dst = ar
	}
	return s, nil
}

// Close unmaps and removes the arena files. Idempotent.
func (s *Store) Close() error {
	var err error
	for _, a := range []**Arena{&s.Keys, &s.Meta, &s.Edges} {
		if *a != nil {
			err = errors.Join(err, (*a).close())
			*a = nil
		}
	}
	return err
}

// Count returns the number of interned keys.
func (s *Store) Count() int { return s.count }

// Lookup probes the table for key. Safe for concurrent use while no
// Intern is running (the explorer's expand phase).
func (s *Store) Lookup(key []byte) (int, bool) {
	h := hash64(key)
	sh := &s.shards[h&(numShards-1)]
	if len(sh.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(sh.slots) - 1)
	for i := (h >> 8) & mask; ; i = (i + 1) & mask {
		sl := &sh.slots[i]
		if sl.klen == 0 {
			return 0, false
		}
		if sl.hash == h && int(sl.klen) == len(key) && s.Keys.Equal(sl.off, key) {
			return int(sl.id), true
		}
	}
}

// Intern appends key to the key arena and indexes it, returning the
// assigned id (the insertion ordinal). The caller has already verified
// the key is absent. Single-threaded (the explorer's merge phase).
func (s *Store) Intern(key []byte) (int, error) {
	if len(key) == 0 {
		return 0, errors.New("store: empty key")
	}
	if s.count > 1<<31-2 {
		return 0, fmt.Errorf("store: %d keys exceed the table's id width", s.count)
	}
	off, err := s.Keys.Append(key)
	if err != nil {
		return 0, err
	}
	h := hash64(key)
	sh := &s.shards[h&(numShards-1)]
	if 4*(sh.n+1) > 3*len(sh.slots) {
		sh.grow()
	}
	id := s.count
	sh.insert(slot{hash: h, off: off, klen: uint32(len(key)), id: int32(id)})
	sh.n++
	s.count++
	return id, nil
}

func (sh *shard) insert(sl slot) {
	mask := uint64(len(sh.slots) - 1)
	for i := (sl.hash >> 8) & mask; ; i = (i + 1) & mask {
		if sh.slots[i].klen == 0 {
			sh.slots[i] = sl
			return
		}
	}
}

func (sh *shard) grow() {
	old := sh.slots
	n := 2 * len(old)
	if n == 0 {
		n = 256
	}
	sh.slots = make([]slot, n)
	for _, sl := range old {
		if sl.klen != 0 {
			sh.insert(sl)
		}
	}
}

// hash64 is FNV-1a over the key bytes.
func hash64(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x00000100000001b3
	}
	return h
}

// CheckBudget enforces Options.Budget against the current live heap: if
// HeapAlloc exceeds the budget, a GC is forced (transient garbage must
// not fail a run) and the check repeats; a still-over-budget heap
// returns an error wrapping ErrBudget. Call at level barriers.
func (s *Store) CheckBudget() error {
	if s.budget <= 0 {
		return nil
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if int64(m.HeapAlloc) > s.budget {
		runtime.GC()
		runtime.ReadMemStats(&m)
	}
	s.heapMax.SetMax(int64(m.HeapAlloc))
	if int64(m.HeapAlloc) > s.budget {
		return fmt.Errorf("store: live heap %d bytes over the %d-byte budget: %w",
			m.HeapAlloc, s.budget, ErrBudget)
	}
	return nil
}

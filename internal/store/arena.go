package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/bits"
	"os"

	"setagree/internal/obs"
)

// Arena is an append-only byte log backed by fixed-size mmap'd chunks
// of one file. Chunks never move once mapped, so readers (including the
// checkpoint writer's background goroutine) hold stable views of the
// committed prefix while the single appender extends the tail. Records
// are not padded to chunk boundaries; a record straddling one is read
// across chunks and counted on the store.arena_faults counter.
type Arena struct {
	f      *os.File
	path   string
	chunks [][]byte
	size   int64
	shift  uint
	mask   int64

	spilled *obs.Counter
	faults  *obs.Counter
}

// newArena creates (truncating) the arena file at path with power-of-two
// chunkBytes chunks.
func newArena(path string, chunkBytes int64, spilled, faults *obs.Counter) (*Arena, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Arena{
		f:       f,
		path:    path,
		shift:   uint(bits.TrailingZeros64(uint64(chunkBytes))),
		mask:    chunkBytes - 1,
		spilled: spilled,
		faults:  faults,
	}, nil
}

// Len returns the number of bytes appended so far.
func (a *Arena) Len() int64 { return a.size }

// Append writes b at the end of the arena and returns its start offset.
func (a *Arena) Append(b []byte) (int64, error) {
	off := a.size
	if len(b) == 0 {
		return off, nil
	}
	if off>>a.shift != (off+int64(len(b))-1)>>a.shift {
		a.faults.Inc()
	}
	a.spilled.Add(int64(len(b)))
	for len(b) > 0 {
		if a.size == int64(len(a.chunks))<<a.shift {
			if err := a.addChunk(); err != nil {
				return 0, err
			}
		}
		c := a.chunks[a.size>>a.shift]
		n := copy(c[a.size&a.mask:], b)
		a.size += int64(n)
		b = b[n:]
	}
	return off, nil
}

func (a *Arena) addChunk() error {
	chunkBytes := a.mask + 1
	end := (int64(len(a.chunks)) + 1) * chunkBytes
	if err := a.f.Truncate(end); err != nil {
		return fmt.Errorf("store: grow %s: %w", a.path, err)
	}
	c, err := mapChunk(a.f, end-chunkBytes, int(chunkBytes))
	if err != nil {
		return fmt.Errorf("store: map %s: %w", a.path, err)
	}
	a.chunks = append(a.chunks, c)
	return nil
}

// Byte returns the byte at off. The offset must be < Len(); the arena
// is the explorer's own write-once data, so a bad offset is an internal
// invariant failure and panics via the bounds check.
func (a *Arena) Byte(off int64) byte {
	return a.chunks[off>>a.shift][off&a.mask]
}

// Equal reports whether the bytes at [off, off+len(key)) equal key,
// comparing chunk-wise without copying.
func (a *Arena) Equal(off int64, key []byte) bool {
	for len(key) > 0 {
		c := a.chunks[off>>a.shift]
		co := off & a.mask
		n := int64(len(c)) - co
		if int64(len(key)) <= n {
			return bytes.Equal(c[co:co+int64(len(key))], key)
		}
		a.faults.Inc()
		if !bytes.Equal(c[co:], key[:n]) {
			return false
		}
		key = key[n:]
		off += n
	}
	return true
}

// FaultSpan counts a chunk-boundary fault when the record at
// [start, end) straddles one. Callers decoding records byte-wise report
// the span once per record instead of per byte.
func (a *Arena) FaultSpan(start, end int64) {
	if end > start && start>>a.shift != (end-1)>>a.shift {
		a.faults.Inc()
	}
}

// Sections returns chunk-backed views covering [0, upTo), suitable for
// checkpoint.WriteV: zero-copy, and stable while the appender only
// writes at or beyond upTo.
func (a *Arena) Sections(upTo int64) [][]byte {
	var out [][]byte
	for off := int64(0); off < upTo; {
		c := a.chunks[off>>a.shift]
		co := off & a.mask
		n := int64(len(c)) - co
		if off+n > upTo {
			n = upTo - off
		}
		out = append(out, c[co:co+n])
		off += n
	}
	return out
}

// close unmaps the chunks and removes the backing file (the arena is
// scratch; the checkpoint container is the durable artifact).
func (a *Arena) close() error {
	var err error
	for _, c := range a.chunks {
		err = errors.Join(err, unmapChunk(c))
	}
	a.chunks = nil
	if a.f != nil {
		err = errors.Join(err, a.f.Close())
		a.f = nil
		err = errors.Join(err, os.Remove(a.path))
	}
	return err
}

package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"setagree/internal/obs"
)

func TestParseFlag(t *testing.T) {
	cases := []struct {
		in     string
		dir    string
		budget int64
		err    bool
	}{
		{in: "", dir: ""},
		{in: "run-store", dir: "run-store"},
		{in: "run-store:1.5GB", dir: "run-store", budget: 3 << 29},
		{in: "a/b:100", dir: "a/b", budget: 100},
		{in: "a:2KiB", dir: "a", budget: 2048},
		{in: "a:64M", dir: "a", budget: 64 << 20},
		{in: "a:bogus", err: true},
		{in: ":1GB", err: true},
	}
	for _, c := range cases {
		got, err := ParseFlag(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseFlag(%q): want error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFlag(%q): %v", c.in, err)
			continue
		}
		if got.Dir != c.dir || got.Budget != c.budget {
			t.Errorf("ParseFlag(%q) = %+v, want dir %q budget %d", c.in, got, c.dir, c.budget)
		}
	}
}

func TestParseBudgetRejects(t *testing.T) {
	for _, in := range []string{"", "GB", "-1", "1TB", "1.2.3MB"} {
		if v, err := ParseBudget(in); err == nil {
			t.Errorf("ParseBudget(%q) = %d, want error", in, v)
		}
	}
}

// TestArenaStraddle exercises records crossing chunk boundaries with a
// minimum-size chunk: appends, byte reads, chunked compares, and the
// fault counter.
func TestArenaStraddle(t *testing.T) {
	sink := obs.NewSink()
	s, err := Open(Options{Dir: t.TempDir(), ChunkBytes: 1}, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Keys.mask + 1; got != minChunkBytes {
		t.Fatalf("chunk size %d, want clamped to %d", got, minChunkBytes)
	}

	var want []byte
	rec := make([]byte, 100+19*90)
	for i := 0; i < 20; i++ {
		for j := range rec {
			rec[j] = byte(i + j)
		}
		off, err := s.Keys.Append(rec[:100+i*90])
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(len(want)) {
			t.Fatalf("append %d: offset %d, want %d", i, off, len(want))
		}
		want = append(want, rec[:100+i*90]...)
	}
	if s.Keys.Len() != int64(len(want)) {
		t.Fatalf("Len() = %d, want %d", s.Keys.Len(), len(want))
	}
	for i, b := range want {
		if got := s.Keys.Byte(int64(i)); got != b {
			t.Fatalf("Byte(%d) = %d, want %d", i, got, b)
		}
	}
	if !s.Keys.Equal(0, want) {
		t.Fatal("Equal over the whole straddled arena = false")
	}
	if s.Keys.Equal(1, want[:len(want)-1]) {
		t.Fatal("Equal at shifted offset = true")
	}
	var flat []byte
	for _, sec := range s.Keys.Sections(s.Keys.Len()) {
		flat = append(flat, sec...)
	}
	if !bytes.Equal(flat, want) {
		t.Fatal("Sections do not reassemble the arena")
	}
	snap := sink.Snapshot()
	if snap.Counters["store.spilled_bytes"] != int64(len(want)) {
		t.Fatalf("spilled_bytes = %d, want %d", snap.Counters["store.spilled_bytes"], len(want))
	}
	if snap.Counters["store.arena_faults"] == 0 {
		t.Fatal("straddling appends and compares counted no arena faults")
	}
}

func TestTableInternLookupGrow(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Enough keys to force shard growth past the initial 256 slots.
	const n = 200000
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%d-%d", i, i*i)) }
	for i := 0; i < n; i++ {
		if _, ok := s.Lookup(key(i)); ok {
			t.Fatalf("key %d present before intern", i)
		}
		id, err := s.Intern(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("Intern assigned id %d, want %d", id, i)
		}
	}
	if s.Count() != n {
		t.Fatalf("Count() = %d, want %d", s.Count(), n)
	}
	for i := 0; i < n; i++ {
		id, ok := s.Lookup(key(i))
		if !ok || id != i {
			t.Fatalf("Lookup(key %d) = %d,%v", i, id, ok)
		}
	}
	if _, ok := s.Lookup([]byte("absent")); ok {
		t.Fatal("Lookup of absent key succeeded")
	}
	if _, err := s.Intern(nil); err == nil {
		t.Fatal("Intern of empty key succeeded")
	}
}

func TestCloseRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Keys.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"keys.arena", "meta.arena", "edges.arena"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s missing before Close: %v", name, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"keys.arena", "meta.arena", "edges.arena"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s survives Close (err %v)", name, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestOpenTruncatesLeftovers verifies crash leftovers do not leak into
// a new run: reopening a dir starts the arenas empty.
func TestOpenTruncatesLeftovers(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "keys.arena"), bytes.Repeat([]byte("x"), 1<<16), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Keys.Len() != 0 {
		t.Fatalf("reopened arena Len() = %d, want 0", s.Keys.Len())
	}
}

func TestCheckBudget(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Budget: 1}, obs.NewSink())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CheckBudget(); !errors.Is(err, ErrBudget) {
		t.Fatalf("1-byte budget: err = %v, want ErrBudget", err)
	}
	s.budget = 0
	if err := s.CheckBudget(); err != nil {
		t.Fatalf("unbounded budget: %v", err)
	}
}

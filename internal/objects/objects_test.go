package objects_test

import (
	"testing"
	"testing/quick"

	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

func applyOne(t *testing.T, sp spec.Spec, st spec.State, op value.Op) (spec.State, value.Value) {
	t.Helper()
	ts, err := sp.Step(st, op)
	if err != nil {
		t.Fatalf("Step(%s): %v", op, err)
	}
	if len(ts) != 1 {
		t.Fatalf("Step(%s): got %d transitions, want 1", op, len(ts))
	}
	return ts[0].Next, ts[0].Resp
}

func TestRegisterInitialRead(t *testing.T) {
	t.Parallel()
	r := objects.NewRegister()
	_, resp := applyOne(t, r, r.Init(), value.Read())
	if resp != value.None {
		t.Errorf("initial read = %s, want NIL", resp)
	}
}

func TestRegisterWriteRead(t *testing.T) {
	t.Parallel()
	r := objects.NewRegister()
	st := r.Init()
	st, resp := applyOne(t, r, st, value.Write(42))
	if resp != value.Done {
		t.Errorf("write returned %s, want done", resp)
	}
	_, resp = applyOne(t, r, st, value.Read())
	if resp != 42 {
		t.Errorf("read = %s, want 42", resp)
	}
}

func TestRegisterOverwrite(t *testing.T) {
	t.Parallel()
	r := objects.NewRegister()
	st := r.Init()
	st, _ = applyOne(t, r, st, value.Write(1))
	st, _ = applyOne(t, r, st, value.Write(2))
	_, resp := applyOne(t, r, st, value.Read())
	if resp != 2 {
		t.Errorf("read = %s, want 2", resp)
	}
}

func TestRegisterBadOps(t *testing.T) {
	t.Parallel()
	r := objects.NewRegister()
	for _, op := range []value.Op{value.Propose(1), value.Decide(1), value.Enqueue(1)} {
		if _, err := r.Step(r.Init(), op); err == nil {
			t.Errorf("Step(%s) accepted", op)
		}
	}
}

func TestRegisterDeterministic(t *testing.T) {
	t.Parallel()
	if !spec.Deterministic(objects.NewRegister()) {
		t.Error("registers are deterministic")
	}
}

// TestConsensusFootnote6 pins the n-consensus object of §4 footnote 6:
// the first n proposes return the first proposed value, later proposes
// return ⊥.
func TestConsensusFootnote6(t *testing.T) {
	t.Parallel()
	for n := 1; n <= 4; n++ {
		c := objects.NewConsensus(n)
		st := c.Init()
		var resp value.Value
		for i := 0; i < n+3; i++ {
			st, resp = applyOne(t, c, st, value.Propose(value.Value(10+i)))
			want := value.Value(10)
			if i >= n {
				want = value.Bottom
			}
			if resp != want {
				t.Fatalf("n=%d propose #%d = %s, want %s", n, i+1, resp, want)
			}
		}
	}
}

func TestConsensusName(t *testing.T) {
	t.Parallel()
	if got := objects.NewConsensus(5).Name(); got != "5-consensus" {
		t.Errorf("Name() = %q", got)
	}
}

func TestConsensusBadOps(t *testing.T) {
	t.Parallel()
	c := objects.NewConsensus(2)
	for _, op := range []value.Op{
		value.Read(), value.Propose(value.Bottom), value.Propose(value.None),
		value.ProposeAt(1, 1),
	} {
		if _, err := c.Step(c.Init(), op); err == nil {
			t.Errorf("Step(%s) accepted", op)
		}
	}
}

// TestTwoSAAlgorithm3 pins Algorithm 3: STATE grows to at most two
// values; every response is drawn from STATE.
func TestTwoSAAlgorithm3(t *testing.T) {
	t.Parallel()
	sa := objects.NewTwoSA()
	st := sa.Init()

	ts, err := sa.Step(st, value.Propose(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Resp != 1 {
		t.Fatalf("first propose: %+v", ts)
	}
	st = ts[0].Next

	ts, err = sa.Step(st, value.Propose(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("second propose offered %d transitions, want 2", len(ts))
	}
	st = ts[0].Next

	// Third distinct value is NOT added (|STATE| = 2); responses still
	// come from {1, 2}.
	ts, err = sa.Step(st, value.Propose(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		if tr.Resp != 1 && tr.Resp != 2 {
			t.Fatalf("response %s not among first two distinct proposals", tr.Resp)
		}
	}
}

// TestTwoSADuplicateProposalNotDoubled checks set semantics: proposing
// an already-stored value does not consume the second STATE slot.
func TestTwoSADuplicateProposalNotDoubled(t *testing.T) {
	t.Parallel()
	sa := objects.NewTwoSA()
	st := sa.Init()
	st, _ = applyOne(t, sa, st, value.Propose(1))
	ts, err := sa.Step(st, value.Propose(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("duplicate proposal branched %d ways", len(ts))
	}
	st = ts[0].Next
	// The slot is still free for a genuinely new value.
	ts, err = sa.Step(st, value.Propose(9))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range ts {
		if tr.Resp == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("second distinct value was not stored")
	}
}

// TestTwoSAAtMostTwoDistinctResponses is the object's defining property
// (§4): over any proposal sequence, at most two distinct values are
// ever returned, and they are the first two distinct proposals.
func TestTwoSAAtMostTwoDistinctResponses(t *testing.T) {
	t.Parallel()
	f := func(proposalsRaw []uint8) bool {
		sa := objects.NewTwoSA()
		st := sa.Init()
		var firstTwo []value.Value
		for _, raw := range proposalsRaw {
			v := value.Value(raw % 5)
			dup := false
			for _, x := range firstTwo {
				if x == v {
					dup = true
				}
			}
			if len(firstTwo) < 2 && !dup {
				firstTwo = append(firstTwo, v)
			}
			ts, err := sa.Step(st, value.Propose(v))
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range ts {
				ok := false
				for _, x := range firstTwo {
					if tr.Resp == x {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("response %s outside first two distinct proposals %v", tr.Resp, firstTwo)
				}
			}
			st = ts[len(ts)-1].Next // any branch; states agree
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSetAgreementTransitionsShareState checks that the branches of one
// propose differ only in the response (the proof of Subclaim 4.2.6.2
// relies on this: "the state of the 2-SA object only records values
// that are proposed to it, not values that it returns").
func TestSetAgreementTransitionsShareState(t *testing.T) {
	t.Parallel()
	sa := objects.NewTwoSA()
	st := sa.Init()
	st, _ = applyOne(t, sa, st, value.Propose(1))
	ts, err := sa.Step(st, value.Propose(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts[1:] {
		if tr.Next.Key() != ts[0].Next.Key() {
			t.Fatal("branches of one propose must share the successor state")
		}
	}
}

// TestSetAgreementParticipationBound pins the (n,k)-SA bound: after n
// proposals, ⊥ forever.
func TestSetAgreementParticipationBound(t *testing.T) {
	t.Parallel()
	sa := objects.NewSetAgreement(3, 2)
	st := sa.Init()
	for i := 0; i < 3; i++ {
		ts, err := sa.Step(st, value.Propose(value.Value(i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range ts {
			if tr.Resp == value.Bottom {
				t.Fatalf("proposal %d of 3 returned ⊥", i+1)
			}
		}
		st = ts[0].Next
	}
	for i := 0; i < 2; i++ {
		ts, err := sa.Step(st, value.Propose(9))
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != 1 || ts[0].Resp != value.Bottom {
			t.Fatalf("proposal beyond bound: %+v", ts)
		}
		st = ts[0].Next
	}
}

// TestSetAgreementConsensusDegenerate checks that (n,1)-SA coincides
// with the n-consensus object response-for-response.
func TestSetAgreementConsensusDegenerate(t *testing.T) {
	t.Parallel()
	const n = 3
	sa := objects.NewSetAgreement(n, 1)
	c := objects.NewConsensus(n)
	saSt, cSt := sa.Init(), c.Init()
	for i := 0; i < n+2; i++ {
		var a, b value.Value
		saSt, a = applyOne(t, sa, saSt, value.Propose(value.Value(20+i)))
		cSt, b = applyOne(t, c, cSt, value.Propose(value.Value(20+i)))
		if a != b {
			t.Fatalf("propose #%d: (n,1)-SA=%s, n-consensus=%s", i+1, a, b)
		}
	}
	if !spec.Deterministic(sa) {
		t.Error("(n,1)-SA must be deterministic")
	}
}

func TestSetAgreementNames(t *testing.T) {
	t.Parallel()
	if got := objects.NewTwoSA().Name(); got != "2-SA" {
		t.Errorf("2-SA name = %q", got)
	}
	if got := objects.NewSetAgreement(6, 3).Name(); got != "(6,3)-SA" {
		t.Errorf("(6,3)-SA name = %q", got)
	}
}

func TestSetAgreementBadOps(t *testing.T) {
	t.Parallel()
	sa := objects.NewTwoSA()
	for _, op := range []value.Op{
		value.Read(), value.Propose(value.Done), value.Decide(2),
	} {
		if _, err := sa.Step(sa.Init(), op); err == nil {
			t.Errorf("Step(%s) accepted", op)
		}
	}
}

func TestQueueFIFO(t *testing.T) {
	t.Parallel()
	q := objects.NewQueue()
	st := q.Init()
	_, resp := applyOne(t, q, st, value.Dequeue())
	if resp != value.None {
		t.Fatalf("dequeue of empty queue = %s, want NIL", resp)
	}
	st, _ = applyOne(t, q, st, value.Enqueue(1))
	st, _ = applyOne(t, q, st, value.Enqueue(2))
	st, _ = applyOne(t, q, st, value.Enqueue(3))
	for _, want := range []value.Value{1, 2, 3} {
		st, resp = applyOne(t, q, st, value.Dequeue())
		if resp != want {
			t.Fatalf("dequeue = %s, want %s", resp, want)
		}
	}
	_, resp = applyOne(t, q, st, value.Dequeue())
	if resp != value.None {
		t.Fatalf("drained queue returned %s", resp)
	}
}

func TestQueueStepDoesNotMutate(t *testing.T) {
	t.Parallel()
	q := objects.NewQueue()
	st := q.Init()
	st, _ = applyOne(t, q, st, value.Enqueue(1))
	before := st.Key()
	if _, _ = applyOne(t, q, st, value.Enqueue(2)); st.Key() != before {
		t.Fatal("Step mutated its input state")
	}
	if _, _ = applyOne(t, q, st, value.Dequeue()); st.Key() != before {
		t.Fatal("Step mutated its input state")
	}
}

func TestCounterFetchAdd(t *testing.T) {
	t.Parallel()
	c := objects.NewCounter()
	st := c.Init()
	st, resp := applyOne(t, c, st, value.FetchAdd(5))
	if resp != 0 {
		t.Fatalf("first fetch&add returned %s, want 0", resp)
	}
	st, resp = applyOne(t, c, st, value.FetchAdd(3))
	if resp != 5 {
		t.Fatalf("second fetch&add returned %s, want 5", resp)
	}
	_, resp = applyOne(t, c, st, value.Read())
	if resp != 8 {
		t.Fatalf("read returned %s, want 8", resp)
	}
}

func TestTestAndSet(t *testing.T) {
	t.Parallel()
	ts := objects.NewTestAndSet()
	st := ts.Init()
	st, resp := applyOne(t, ts, st, value.TestAndSet())
	if resp != 0 {
		t.Fatalf("first TAS returned %s, want 0", resp)
	}
	for i := 0; i < 3; i++ {
		st, resp = applyOne(t, ts, st, value.TestAndSet())
		if resp != 1 {
			t.Fatalf("later TAS returned %s, want 1", resp)
		}
	}
}

// TestStickyIsUnboundedConsensus checks the (∞,1)-SA degenerate case.
func TestStickyIsUnboundedConsensus(t *testing.T) {
	t.Parallel()
	s := objects.Sticky()
	st := s.Init()
	var resp value.Value
	for i := 0; i < 20; i++ {
		st, resp = applyOne(t, s, st, value.Propose(value.Value(30+i)))
		if resp != 30 {
			t.Fatalf("propose #%d returned %s, want 30", i+1, resp)
		}
	}
	if !spec.Deterministic(s) {
		t.Error("sticky consensus must be deterministic")
	}
}

// TestSpecMetadata pins the Name/Deterministic/Key surfaces of the zoo
// (these feed the model checker's hashing and the CLI's reporting).
func TestSpecMetadata(t *testing.T) {
	t.Parallel()
	cases := []struct {
		sp            spec.Spec
		name          string
		deterministic bool
	}{
		{objects.NewRegister(), "register", true},
		{objects.NewConsensus(2), "2-consensus", true},
		{objects.NewTwoSA(), "2-SA", false},
		{objects.NewSetAgreement(5, 3), "(5,3)-SA", false},
		{objects.NewSetAgreement(5, 1), "(5,1)-SA", true},
		{objects.NewQueue(), "queue", true},
		{objects.NewQueueWith(1, 2), "queue", true},
		{objects.NewCounter(), "fetch&add", true},
		{objects.NewTestAndSet(), "test&set", true},
		{objects.Sticky(), "1-SA", true},
	}
	for _, tc := range cases {
		if got := tc.sp.Name(); got != tc.name {
			t.Errorf("Name() = %q, want %q", got, tc.name)
		}
		if got := spec.Deterministic(tc.sp); got != tc.deterministic {
			t.Errorf("%s: Deterministic = %v, want %v", tc.name, got, tc.deterministic)
		}
		if tc.sp.Init().Key() == "" {
			t.Errorf("%s: empty initial state key", tc.name)
		}
	}
}

// TestStateKeysDiscriminate pins that distinct object states key
// differently (register content, queue content/order, counter total,
// TAS bit, consensus progress).
func TestStateKeysDiscriminate(t *testing.T) {
	t.Parallel()
	r := objects.NewRegister()
	s0 := r.Init()
	s1, _ := applyOne(t, r, s0, value.Write(1))
	s2, _ := applyOne(t, r, s0, value.Write(2))
	if s1.Key() == s2.Key() || s1.Key() == s0.Key() {
		t.Error("register keys collide")
	}

	q := objects.NewQueue()
	qa, _ := applyOne(t, q, q.Init(), value.Enqueue(1))
	qa, _ = applyOne(t, q, qa, value.Enqueue(2))
	qb, _ := applyOne(t, q, q.Init(), value.Enqueue(2))
	qb, _ = applyOne(t, q, qb, value.Enqueue(1))
	if qa.Key() == qb.Key() {
		t.Error("queue keys ignore order")
	}

	c := objects.NewCounter()
	ca, _ := applyOne(t, c, c.Init(), value.FetchAdd(2))
	cb, _ := applyOne(t, c, c.Init(), value.FetchAdd(3))
	if ca.Key() == cb.Key() {
		t.Error("counter keys collide")
	}

	ts := objects.NewTestAndSet()
	ta, _ := applyOne(t, ts, ts.Init(), value.TestAndSet())
	if ta.Key() == ts.Init().Key() {
		t.Error("TAS keys collide")
	}

	cons := objects.NewConsensus(2)
	k0 := cons.Init().Key()
	k1state, _ := applyOne(t, cons, cons.Init(), value.Propose(5))
	if k1state.Key() == k0 {
		t.Error("consensus keys ignore progress")
	}
}

// TestQueueWithInitIsolated pins that NewQueueWith copies its items and
// Init returns fresh state each time.
func TestQueueWithInitIsolated(t *testing.T) {
	t.Parallel()
	items := []value.Value{7, 8}
	q := objects.NewQueueWith(items...)
	items[0] = 99
	st, resp := applyOne(t, q, q.Init(), value.Dequeue())
	if resp != 7 {
		t.Fatalf("dequeue = %s, want 7 (constructor must copy)", resp)
	}
	// A second Init is unaffected by stepping the first.
	_, resp = applyOne(t, q, q.Init(), value.Dequeue())
	if resp != 7 {
		t.Fatalf("fresh Init dequeue = %s, want 7", resp)
	}
	_ = st
}

// TestClassicBadOps pins interface rejection for the classic objects.
func TestClassicBadOps(t *testing.T) {
	t.Parallel()
	if _, err := objects.NewQueue().Step(objects.NewQueue().Init(), value.Enqueue(value.None)); err == nil {
		t.Error("queue accepted sentinel enqueue")
	}
	if _, err := objects.NewCounter().Step(objects.NewCounter().Init(), value.FetchAdd(value.Bottom)); err == nil {
		t.Error("counter accepted sentinel increment")
	}
	if _, err := objects.NewCounter().Step(objects.NewCounter().Init(), value.Dequeue()); err == nil {
		t.Error("counter accepted dequeue")
	}
	if _, err := objects.NewTestAndSet().Step(objects.NewTestAndSet().Init(), value.Read()); err == nil {
		t.Error("TAS accepted read")
	}
	if _, err := objects.NewQueue().Step(objects.NewCounter().Init(), value.Dequeue()); err == nil {
		t.Error("queue accepted foreign state")
	}
}

// Package objects implements the base shared objects the paper's
// constructions and proofs use as substrates: atomic registers,
// n-consensus objects (§4 footnote 6), and the strong (n,k)-set-
// agreement family, whose unbounded k=2 member is the 2-SA object of §4
// (Algorithm 3).
//
// The paper's own contributions — n-PAC, (n,m)-PAC, O_n and O'_n — live
// in internal/core and are built over these.
package objects

import (
	"encoding/binary"
	"strconv"

	"setagree/internal/spec"
	"setagree/internal/value"
)

// RegisterState is the state of an atomic register: the value it holds.
type RegisterState struct {
	// Val is the register content; value.None until first written if
	// the register was created with no initial value.
	Val value.Value
}

// Key implements spec.State.
func (s RegisterState) Key() string {
	return strconv.FormatInt(int64(s.Val), 36)
}

// AppendKey implements spec.AppendKeyer.
func (s RegisterState) AppendKey(dst []byte) []byte {
	return binary.AppendVarint(dst, int64(s.Val))
}

var _ spec.State = RegisterState{}
var _ spec.AppendKeyer = RegisterState{}

// Register is the sequential specification of an atomic read/write
// register holding a single Value.
type Register struct {
	// Initial is the value the register holds before the first write.
	Initial value.Value
}

var _ spec.Spec = Register{}

// NewRegister returns a register initialized to value.None (the paper's
// registers start unset).
func NewRegister() Register { return Register{Initial: value.None} }

// Name implements spec.Spec.
func (Register) Name() string { return "register" }

// Init implements spec.Spec.
func (r Register) Init() spec.State { return RegisterState{Val: r.Initial} }

// Deterministic reports that registers are deterministic objects.
func (Register) Deterministic() bool { return true }

// ValueOblivious implements the spec.ValueOblivious extension: a
// register stores and returns values without inspecting them.
func (Register) ValueOblivious() bool { return true }

// Step implements spec.Spec: READ returns the current content and leaves
// the state unchanged; WRITE(v) stores v and returns done.
func (r Register) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(RegisterState)
	if !ok {
		return nil, spec.BadOpError(r.Name(), op, "foreign state")
	}
	switch op.Method {
	case value.MethodRead:
		return []spec.Transition{{Next: st, Resp: st.Val}}, nil
	case value.MethodWrite:
		return []spec.Transition{{Next: RegisterState{Val: op.Arg}, Resp: value.Done}}, nil
	default:
		return nil, spec.BadOpError(r.Name(), op, "register supports READ and WRITE only")
	}
}

// Symmetry (spec.Symmetric) implementations for the base objects.
// None of these states mention process ids or ports, so only the value
// map acts; each encoder mirrors the corresponding AppendKey byte for
// byte with values routed through p.Val.
//
// CounterState deliberately does NOT implement Symmetric: fetch&add
// does arithmetic on values, which no nontrivial value bijection
// commutes with, and its running total is not a multiset of proposals
// either — systems using counters must be explored unreduced.

package objects

import (
	"encoding/binary"

	"setagree/internal/spec"
)

// AppendKeyUnder implements spec.Symmetric.
func (s RegisterState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	return binary.AppendVarint(dst, int64(p.Val(s.Val)))
}

var _ spec.Symmetric = RegisterState{}

// AppendKeyUnder implements spec.Symmetric. Count is a pure
// cardinality, fixed under any permutation; Val is the first proposal,
// and the permuted execution's first proposal is the image of the
// original's.
func (s ConsensusState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	dst = binary.AppendVarint(dst, int64(p.Val(s.Val)))
	return binary.AppendUvarint(dst, uint64(s.Count))
}

var _ spec.Symmetric = ConsensusState{}

// AppendKeyUnder implements spec.Symmetric. Vals is kept in
// first-proposal order and the permuted execution proposes images in
// the same order, so the image state's Vals is the in-order image of
// Vals — never sort here.
func (s SetAgreementState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Vals)))
	for _, v := range s.Vals {
		dst = binary.AppendVarint(dst, int64(p.Val(v)))
	}
	return binary.AppendUvarint(dst, uint64(s.Count))
}

var _ spec.Symmetric = SetAgreementState{}

// AppendKeyUnder implements spec.Symmetric (FIFO order is positional
// and preserved by the permuted execution).
func (s QueueState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Items)))
	for _, v := range s.Items {
		dst = binary.AppendVarint(dst, int64(p.Val(v)))
	}
	return dst
}

var _ spec.Symmetric = QueueState{}

// AppendKeyUnder implements spec.Symmetric (a bit holds no ids or
// values; the key is permutation-invariant).
func (s TASState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	return s.AppendKey(dst)
}

var _ spec.Symmetric = TASState{}

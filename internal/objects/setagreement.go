package objects

import (
	"encoding/binary"
	"strconv"
	"strings"

	"setagree/internal/spec"
	"setagree/internal/value"
)

// Unbounded, used as the N of a SetAgreement spec, makes the object
// answer every proposal regardless of how many processes use it (the
// 2-SA object of §4 serves "any finite number of processes").
const Unbounded = 0

// SetAgreementState is the state of an (n,k)-SA object.
type SetAgreementState struct {
	// Vals holds the at most K distinct values stored so far, in the
	// order they were first proposed (the paper's STATE set; Algorithm 3
	// line 2 only ever appends).
	Vals []value.Value
	// Count is the number of propose operations performed, saturating
	// at N+1. It stays 0 for unbounded objects.
	Count int
}

// Key implements spec.State.
func (s SetAgreementState) Key() string {
	var b strings.Builder
	for i, v := range s.Vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 36))
	}
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(s.Count))
	return b.String()
}

// AppendKey implements spec.AppendKeyer.
func (s SetAgreementState) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Vals)))
	for _, v := range s.Vals {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return binary.AppendUvarint(dst, uint64(s.Count))
}

var _ spec.State = SetAgreementState{}
var _ spec.AppendKeyer = SetAgreementState{}

func (s SetAgreementState) contains(v value.Value) bool {
	for _, x := range s.Vals {
		if x == v {
			return true
		}
	}
	return false
}

// SetAgreement is the strong (n,k)-set-agreement object family:
//
//   - K bounds the size of STATE: a PROPOSE(v) adds v to STATE only if
//     STATE holds fewer than K distinct values, and every response is
//     drawn (nondeterministically) from STATE, so the object responds
//     with at most K distinct values — the first K distinct values
//     proposed. With K = 2 and N = Unbounded this is exactly the strong
//     2-SA object of §4 (Algorithm 3).
//   - N, when positive, bounds participation the way the n-consensus
//     object of footnote 6 does: only the first N proposals are
//     answered from STATE; later proposals return ⊥. This realizes the
//     (n,k)-SA objects of §6 ("allow up to n processes to solve the
//     k-set agreement problem"), and with K = 1 the spec degenerates to
//     the deterministic n-consensus object.
type SetAgreement struct {
	// N is the participation bound (Unbounded for no bound).
	N int
	// K is the agreement bound (at most K distinct responses).
	K int
}

var _ spec.Spec = SetAgreement{}

// NewTwoSA returns the strong 2-SA object of §4: unbounded
// participation, at most two distinct responses.
func NewTwoSA() SetAgreement { return SetAgreement{N: Unbounded, K: 2} }

// NewSetAgreement returns the (n,k)-SA spec.
func NewSetAgreement(n, k int) SetAgreement { return SetAgreement{N: n, K: k} }

// Name implements spec.Spec.
func (sa SetAgreement) Name() string {
	if sa.N == Unbounded {
		return strconv.Itoa(sa.K) + "-SA"
	}
	return "(" + strconv.Itoa(sa.N) + "," + strconv.Itoa(sa.K) + ")-SA"
}

// Init implements spec.Spec.
func (SetAgreement) Init() spec.State { return SetAgreementState{} }

// Deterministic reports whether the object has any nondeterministic
// branching; only the K = 1 (consensus) degenerate case is
// deterministic.
func (sa SetAgreement) Deterministic() bool { return sa.K <= 1 }

// ValueOblivious implements the spec.ValueOblivious extension: every
// response is one of the stored proposals, never a function of their
// numeric values.
func (SetAgreement) ValueOblivious() bool { return true }

// Step implements spec.Spec. Nondeterminism: one transition per member
// of STATE (they share the successor state and differ only in the
// response).
func (sa SetAgreement) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(SetAgreementState)
	if !ok {
		return nil, spec.BadOpError(sa.Name(), op, "foreign state")
	}
	if op.Method != value.MethodPropose {
		return nil, spec.BadOpError(sa.Name(), op, "set-agreement supports PROPOSE only")
	}
	if err := spec.CheckProposal(sa.Name(), op); err != nil {
		return nil, err
	}

	next := SetAgreementState{Vals: st.Vals, Count: st.Count}
	if sa.N != Unbounded && next.Count <= sa.N {
		next.Count++
	}
	if sa.N != Unbounded && st.Count >= sa.N {
		// Participation exhausted: like the n-consensus object, the
		// object answers ⊥ forever after its first N proposals.
		return []spec.Transition{{Next: next, Resp: value.Bottom}}, nil
	}
	if len(st.Vals) < sa.K && !st.contains(op.Arg) {
		vals := make([]value.Value, len(st.Vals), len(st.Vals)+1)
		copy(vals, st.Vals)
		next.Vals = append(vals, op.Arg)
	}
	ts := make([]spec.Transition, len(next.Vals))
	for i, v := range next.Vals {
		ts[i] = spec.Transition{Next: next, Resp: v}
	}
	return ts, nil
}

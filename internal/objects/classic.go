package objects

import (
	"encoding/binary"
	"strconv"
	"strings"

	"setagree/internal/spec"
	"setagree/internal/value"
)

// This file holds the classic objects of Herlihy's consensus hierarchy
// [10] beyond registers and consensus: FIFO queues, fetch&add counters,
// and test&set bits (all at level 2 of the hierarchy). They serve as
// universal-construction targets and as calibration rows for the
// hierarchy experiments.

// QueueState is the state of a FIFO queue.
type QueueState struct {
	// Items holds the queued values, head first.
	Items []value.Value
}

// Key implements spec.State.
func (s QueueState) Key() string {
	var b strings.Builder
	b.WriteByte('q')
	for i, v := range s.Items {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 36))
	}
	return b.String()
}

// AppendKey implements spec.AppendKeyer.
func (s QueueState) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Items)))
	for _, v := range s.Items {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

var _ spec.State = QueueState{}
var _ spec.AppendKeyer = QueueState{}

// Queue is the sequential specification of a FIFO queue: ENQUEUE(v)
// returns done; DEQUEUE returns and removes the head, or None when
// empty. Its consensus number is 2 [10] — realized by the classic
// one-token protocol (programs.ConsensusFromQueue), which needs a
// pre-loaded queue (Initial).
type Queue struct {
	// Initial holds the queue's initial contents, head first.
	Initial []value.Value
}

var _ spec.Spec = Queue{}

// NewQueue returns an initially empty FIFO queue spec.
func NewQueue() Queue { return Queue{} }

// NewQueueWith returns a FIFO queue pre-loaded with items (head first).
func NewQueueWith(items ...value.Value) Queue {
	return Queue{Initial: append([]value.Value(nil), items...)}
}

// Name implements spec.Spec.
func (Queue) Name() string { return "queue" }

// Init implements spec.Spec.
func (q Queue) Init() spec.State {
	if len(q.Initial) == 0 {
		return QueueState{}
	}
	items := make([]value.Value, len(q.Initial))
	copy(items, q.Initial)
	return QueueState{Items: items}
}

// Deterministic reports that queues are deterministic.
func (Queue) Deterministic() bool { return true }

// ValueOblivious implements the spec.ValueOblivious extension: a queue
// stores and returns values without inspecting them.
func (Queue) ValueOblivious() bool { return true }

// Step implements spec.Spec.
func (q Queue) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(QueueState)
	if !ok {
		return nil, spec.BadOpError(q.Name(), op, "foreign state")
	}
	switch op.Method {
	case value.MethodEnqueue:
		if err := spec.CheckProposal(q.Name(), op); err != nil {
			return nil, err
		}
		items := make([]value.Value, len(st.Items), len(st.Items)+1)
		copy(items, st.Items)
		return []spec.Transition{{
			Next: QueueState{Items: append(items, op.Arg)},
			Resp: value.Done,
		}}, nil
	case value.MethodDequeue:
		if len(st.Items) == 0 {
			return []spec.Transition{{Next: st, Resp: value.None}}, nil
		}
		rest := make([]value.Value, len(st.Items)-1)
		copy(rest, st.Items[1:])
		return []spec.Transition{{Next: QueueState{Items: rest}, Resp: st.Items[0]}}, nil
	default:
		return nil, spec.BadOpError(q.Name(), op, "queue supports ENQUEUE and DEQUEUE only")
	}
}

// CounterState is the state of a fetch&add counter.
type CounterState struct {
	// Total is the running sum.
	Total value.Value
}

// Key implements spec.State.
func (s CounterState) Key() string { return "c" + strconv.FormatInt(int64(s.Total), 36) }

// AppendKey implements spec.AppendKeyer.
func (s CounterState) AppendKey(dst []byte) []byte {
	return binary.AppendVarint(dst, int64(s.Total))
}

var _ spec.State = CounterState{}
var _ spec.AppendKeyer = CounterState{}

// Counter is the sequential specification of a fetch&add counter:
// FETCH_ADD(v) adds v and returns the prior total. Its consensus number
// is 2 [10].
type Counter struct{}

var _ spec.Spec = Counter{}

// NewCounter returns the fetch&add counter spec.
func NewCounter() Counter { return Counter{} }

// Name implements spec.Spec.
func (Counter) Name() string { return "fetch&add" }

// Init implements spec.Spec.
func (Counter) Init() spec.State { return CounterState{} }

// Deterministic reports that counters are deterministic.
func (Counter) Deterministic() bool { return true }

// Step implements spec.Spec.
func (c Counter) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(CounterState)
	if !ok {
		return nil, spec.BadOpError(c.Name(), op, "foreign state")
	}
	if op.Method == value.MethodRead {
		return []spec.Transition{{Next: st, Resp: st.Total}}, nil
	}
	if op.Method != value.MethodFetchAdd {
		return nil, spec.BadOpError(c.Name(), op, "counter supports FETCH_ADD and READ only")
	}
	if op.Arg.IsSentinel() {
		return nil, spec.BadOpError(c.Name(), op, "sentinel increment")
	}
	return []spec.Transition{{
		Next: CounterState{Total: st.Total + op.Arg},
		Resp: st.Total,
	}}, nil
}

// TASState is the state of a test&set bit.
type TASState struct {
	// Set records whether the bit has been set.
	Set bool
}

// Key implements spec.State.
func (s TASState) Key() string {
	if s.Set {
		return "t1"
	}
	return "t0"
}

// AppendKey implements spec.AppendKeyer.
func (s TASState) AppendKey(dst []byte) []byte {
	if s.Set {
		return append(dst, 1)
	}
	return append(dst, 0)
}

var _ spec.State = TASState{}
var _ spec.AppendKeyer = TASState{}

// TestAndSet is the sequential specification of a test&set bit:
// TEST_AND_SET returns the prior value (0 for the first caller, 1 ever
// after). Its consensus number is 2 [10].
type TestAndSet struct{}

var _ spec.Spec = TestAndSet{}

// NewTestAndSet returns the test&set spec.
func NewTestAndSet() TestAndSet { return TestAndSet{} }

// Name implements spec.Spec.
func (TestAndSet) Name() string { return "test&set" }

// Init implements spec.Spec.
func (TestAndSet) Init() spec.State { return TASState{} }

// Deterministic reports that test&set bits are deterministic.
func (TestAndSet) Deterministic() bool { return true }

// Step implements spec.Spec.
func (t TestAndSet) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(TASState)
	if !ok {
		return nil, spec.BadOpError(t.Name(), op, "foreign state")
	}
	if op.Method != value.MethodTestAndSet {
		return nil, spec.BadOpError(t.Name(), op, "test&set supports TEST_AND_SET only")
	}
	prior := value.Value(0)
	if st.Set {
		prior = 1
	}
	return []spec.Transition{{Next: TASState{Set: true}, Resp: prior}}, nil
}

// Sticky returns the "sticky" consensus object that serves any number
// of processes: the (Unbounded, 1)-SA object, whose first proposal
// fixes the decision forever. Its consensus number is ∞.
func Sticky() SetAgreement { return SetAgreement{N: Unbounded, K: 1} }

package objects

import (
	"encoding/binary"
	"strconv"

	"setagree/internal/spec"
	"setagree/internal/value"
)

// ConsensusState is the state of an n-consensus object.
type ConsensusState struct {
	// Val is the value of the first propose operation, or value.None if
	// no propose has occurred yet.
	Val value.Value
	// Count is the number of propose operations performed so far,
	// saturating at N+1 (further counting is unobservable).
	Count int
}

// Key implements spec.State.
func (s ConsensusState) Key() string {
	return strconv.FormatInt(int64(s.Val), 36) + "." + strconv.Itoa(s.Count)
}

// AppendKey implements spec.AppendKeyer.
func (s ConsensusState) AppendKey(dst []byte) []byte {
	dst = binary.AppendVarint(dst, int64(s.Val))
	return binary.AppendUvarint(dst, uint64(s.Count))
}

var _ spec.State = ConsensusState{}
var _ spec.AppendKeyer = ConsensusState{}

// Consensus is the deterministic linearizable n-consensus object of §4
// footnote 6 (after Jayanti [12] and Qadri [13]): each of the first N
// PROPOSE operations returns the value of the first PROPOSE; every
// subsequent PROPOSE returns ⊥. With this spec the object solves
// consensus among N processes but not among N+1, so its consensus
// number is exactly N.
type Consensus struct {
	// N is the number of propose operations the object answers before
	// responding ⊥.
	N int
}

var _ spec.Spec = Consensus{}

// NewConsensus returns the n-consensus spec for the given n (n >= 1).
func NewConsensus(n int) Consensus { return Consensus{N: n} }

// Name implements spec.Spec.
func (c Consensus) Name() string {
	return strconv.Itoa(c.N) + "-consensus"
}

// Init implements spec.Spec.
func (Consensus) Init() spec.State {
	return ConsensusState{Val: value.None}
}

// Deterministic reports that n-consensus objects are deterministic.
func (Consensus) Deterministic() bool { return true }

// ValueOblivious implements the spec.ValueOblivious extension: the
// winning proposal is adopted and echoed without being inspected.
func (Consensus) ValueOblivious() bool { return true }

// Step implements spec.Spec.
func (c Consensus) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(ConsensusState)
	if !ok {
		return nil, spec.BadOpError(c.Name(), op, "foreign state")
	}
	if op.Method != value.MethodPropose {
		return nil, spec.BadOpError(c.Name(), op, "consensus supports PROPOSE only")
	}
	if err := spec.CheckProposal(c.Name(), op); err != nil {
		return nil, err
	}
	next := st
	if next.Count <= c.N {
		next.Count++
	}
	if st.Count >= c.N {
		// The object has already served N proposals; it is "no longer
		// useful" (proof of Claim 4.2.9) and returns ⊥ forever.
		return []spec.Transition{{Next: next, Resp: value.Bottom}}, nil
	}
	if next.Val == value.None {
		next.Val = op.Arg
	}
	return []spec.Transition{{Next: next, Resp: next.Val}}, nil
}

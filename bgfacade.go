package setagree

import (
	"setagree/internal/bg"
)

// SafeAgreement is the Borowsky–Gafni safe agreement object — the
// primitive behind the BG simulation that defines the set-consensus
// partial order the paper builds on ([2, 6]). Propose is wait-free;
// Resolve reports the agreed value once no process is inside the
// propose's doorway. A process that crashes mid-propose can keep one
// instance unresolved forever; that bounded damage is the whole point.
// Safe for concurrent use.
type SafeAgreement struct {
	sa *bg.SafeAgreement
}

// NewSafeAgreement creates a safe agreement instance for n processes
// (1-based indices).
func NewSafeAgreement(n int) *SafeAgreement {
	return &SafeAgreement{sa: bg.New(n)}
}

// Propose submits process i's value (each process proposes at most
// once). Wait-free.
func (s *SafeAgreement) Propose(i int, v Value) error {
	return s.sa.Propose(i, v)
}

// Resolve returns the agreed value; ok is false while some process is
// inside the doorway or no propose has completed.
func (s *SafeAgreement) Resolve() (v Value, ok bool) {
	return s.sa.Resolve()
}

// KSetAgreement is the classic (k-1)-resilient k-set agreement protocol
// built from k safe agreement instances (the standard BG application):
// every decision is a proposed input, at most k distinct values are
// decided, and every correct process decides as long as at most k-1
// processes crash. Safe for concurrent use.
type KSetAgreement struct {
	p *bg.KSetFromSafeAgreement
}

// NewKSetAgreement creates the protocol object for procs processes with
// agreement bound k.
func NewKSetAgreement(k, procs int) *KSetAgreement {
	return &KSetAgreement{p: bg.NewKSet(k, procs)}
}

// Propose runs process i's protocol to completion and returns its
// decision. maxSpins bounds the wait for a resolution (0 = unbounded,
// the theoretical protocol); ok is false if the bound expired, which
// can only happen when k or more processes crashed inside doorways.
func (s *KSetAgreement) Propose(i int, input Value, maxSpins int) (v Value, ok bool, err error) {
	return s.p.Propose(i, input, maxSpins)
}

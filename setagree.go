// Package setagree is a Go reproduction of "Life Beyond Set Agreement"
// (Chan, Hadzilacos, Toueg; PODC 2017).
//
// The package exposes typed, goroutine-safe (linearizable) shared
// objects for every construct the paper defines — n-PAC objects
// (Algorithm 1), (n,m)-PAC objects, the strong 2-SA and (n,k)-SA
// set-agreement objects, n-consensus objects, registers, and the
// objects O_n and O'_n of §6 — together with a runnable version of
// Algorithm 2 (solving the n-DAC problem from one n-PAC object) and
// Herlihy's universal construction.
//
// The exhaustive model checker, valency analyzer, protocol DSL, and
// candidate enumerator that reproduce the paper's theorems live under
// internal/ and are exercised by the test and benchmark suites; see
// DESIGN.md and EXPERIMENTS.md.
package setagree

import (
	"fmt"

	"setagree/internal/core"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// Value is a datum proposed to or returned by a shared object.
type Value = value.Value

// Reserved sentinel values (see internal/value).
const (
	// None is the paper's NIL.
	None = value.None
	// Bottom is the paper's ⊥.
	Bottom = value.Bottom
	// Done acknowledges propose and write operations.
	Done = value.Done
)

// Errors surfaced by the typed objects.
var (
	// ErrBadOp reports an operation outside an object's interface
	// (out-of-range label or level, or proposing a sentinel).
	ErrBadOp = spec.ErrBadOp
)

// PAC is a linearizable n-PAC object (§3, Algorithm 1): a deterministic,
// non-abortable simulation of the n-DAC object of [9]. It is safe for
// concurrent use.
type PAC struct {
	n   int
	obj *spec.Atomic
}

// NewPAC creates an n-PAC object for labels 1..n.
func NewPAC(n int) *PAC {
	return &PAC{n: n, obj: spec.NewAtomic(core.NewPAC(n), nil)}
}

// N returns the label count.
func (p *PAC) N() int { return p.n }

// Propose applies PROPOSE(v, i): it simulates the invocation of a
// propose of v on port i of the simulated n-DAC object. It returns an
// error only for out-of-range labels or sentinel proposals.
func (p *PAC) Propose(v Value, i int) error {
	_, err := p.obj.Apply(value.ProposeAt(v, i))
	return err
}

// Decide applies DECIDE(i): it simulates the completion of the propose
// on port i, returning the consensus value or Bottom (if the object is
// upset or detected a concurrent operation).
func (p *PAC) Decide(i int) (Value, error) {
	return p.obj.Apply(value.Decide(i))
}

// Upset reports whether the object has become permanently upset (its
// operation history is not legal, Lemma 3.2).
func (p *PAC) Upset() bool { return core.IsUpset(p.obj.Snapshot()) }

// Consensus is a linearizable n-consensus object (§4 footnote 6): the
// first n Propose operations return the first proposed value; later
// ones return Bottom. Safe for concurrent use.
type Consensus struct {
	n   int
	obj *spec.Atomic
}

// NewConsensus creates an n-consensus object.
func NewConsensus(n int) *Consensus {
	return &Consensus{n: n, obj: spec.NewAtomic(objects.NewConsensus(n), nil)}
}

// N returns the consensus width.
func (c *Consensus) N() int { return c.n }

// Propose submits v and returns the object's decision (or Bottom after
// the object answered n proposals).
func (c *Consensus) Propose(v Value) (Value, error) {
	return c.obj.Apply(value.Propose(v))
}

// SetAgreement is a linearizable strong (n,k)-SA object (§4, §6): at
// most k distinct responses (the first k distinct proposals), and with
// a finite participation bound n, Bottom after n proposals. Safe for
// concurrent use.
type SetAgreement struct {
	sa  objects.SetAgreement
	obj *spec.Atomic
}

// NewSetAgreement creates an (n,k)-SA object; pass Unbounded for n to
// serve any number of processes. The chooser resolving which stored
// value each propose returns defaults to "first stored"; use
// NewSetAgreementChooser for other adversaries.
func NewSetAgreement(n, k int) *SetAgreement {
	return NewSetAgreementChooser(n, k, nil)
}

// Unbounded, as the n of NewSetAgreement, removes the participation
// bound.
const Unbounded = objects.Unbounded

// NewSetAgreementChooser creates an (n,k)-SA object with an explicit
// nondeterminism policy (see spec.Chooser in internal/spec; nil means
// first-stored).
func NewSetAgreementChooser(n, k int, choose spec.Chooser) *SetAgreement {
	sa := objects.NewSetAgreement(n, k)
	return &SetAgreement{sa: sa, obj: spec.NewAtomic(sa, choose)}
}

// NewTwoSA creates the strong 2-SA object of §4 (Algorithm 3).
func NewTwoSA() *SetAgreement { return NewSetAgreement(Unbounded, 2) }

// Propose submits v and returns one of the stored values (or Bottom
// once a finite participation bound is exhausted).
func (s *SetAgreement) Propose(v Value) (Value, error) {
	return s.obj.Apply(value.Propose(v))
}

// PACM is a linearizable (n,m)-PAC object (§5): an n-PAC object P
// combined with an m-consensus object C. Safe for concurrent use.
// By Theorem 5.3 it sits at level m of the consensus hierarchy.
type PACM struct {
	n, m int
	obj  *spec.Atomic
}

// NewPACM creates an (n,m)-PAC object.
func NewPACM(n, m int) *PACM {
	return &PACM{n: n, m: m, obj: spec.NewAtomic(core.NewPACM(n, m), nil)}
}

// NewObjectO creates O_n = the (n+1, n)-PAC object (Definition 6.1).
func NewObjectO(n int) *PACM { return NewPACM(n+1, n) }

// N returns the label count of the PAC component.
func (p *PACM) N() int { return p.n }

// M returns the width of the consensus component.
func (p *PACM) M() int { return p.m }

// ProposeC redirects PROPOSE(v) to the m-consensus component.
func (p *PACM) ProposeC(v Value) (Value, error) {
	return p.obj.Apply(value.ProposeC(v))
}

// ProposeP redirects PROPOSE(v, i) to the n-PAC component.
func (p *PACM) ProposeP(v Value, i int) error {
	_, err := p.obj.Apply(value.ProposeP(v, i))
	return err
}

// DecideP redirects DECIDE(i) to the n-PAC component.
func (p *PACM) DecideP(i int) (Value, error) {
	return p.obj.Apply(value.DecideP(i))
}

// OPrime is a linearizable O'_n object (§6): it embodies a set
// agreement power (n_1, n_2, ...) as the routed collection of
// (n_k,k)-SA objects. Safe for concurrent use.
type OPrime struct {
	core core.OPrime
	obj  *spec.Atomic
}

// PowerSequence maps a level k to the k-set agreement number n_k;
// return Unbounded for ∞.
type PowerSequence = core.Sequence

// NewOPrime creates O'_n. A nil power uses the default concrete
// instantiation n_k = k·n (see DESIGN.md substitution 3).
func NewOPrime(n int, power PowerSequence) *OPrime {
	c := core.NewOPrime(n, power)
	return &OPrime{core: c, obj: spec.NewAtomic(c, nil)}
}

// Propose applies PROPOSE(v, k), redirected to the (n_k,k)-SA component.
func (o *OPrime) Propose(v Value, k int) (Value, error) {
	return o.obj.Apply(value.ProposeK(v, k))
}

// Register is a linearizable single-value register. Safe for concurrent
// use.
type Register struct {
	obj *spec.Atomic
}

// NewRegister creates a register initialized to None.
func NewRegister() *Register {
	return &Register{obj: spec.NewAtomic(objects.NewRegister(), nil)}
}

// Read returns the current content.
func (r *Register) Read() Value {
	v, err := r.obj.Apply(value.Read())
	if err != nil {
		// Read is always within the register interface.
		panic(fmt.Sprintf("register read: %v", err))
	}
	return v
}

// Write stores v.
func (r *Register) Write(v Value) {
	if _, err := r.obj.Apply(value.Write(v)); err != nil {
		panic(fmt.Sprintf("register write: %v", err))
	}
}

// Port is the n-DAC-style view of one label of a PAC object (§3: "a
// process can use these two operations to simulate a PROPOSE(v, i)
// operation on an n-DAC object"). TryPropose performs the matched
// PROPOSE(v, i) / DECIDE(i) pair; a ⊥ decide is surfaced as an abort,
// exactly the abortable behaviour the n-PAC object simulates.
type Port struct {
	pac   *PAC
	label int
}

// Port returns the n-DAC-style port for label i (1-based). Each port
// should be driven by a single process at a time — interleaving two
// TryPropose calls on one label upsets the object, faithfully to §3.
func (p *PAC) Port(i int) *Port { return &Port{pac: p, label: i} }

// TryPropose runs one simulated n-DAC propose: it returns the decided
// value, or aborted = true when the object detected a concurrent
// operation (the decide returned ⊥).
func (pt *Port) TryPropose(v Value) (decided Value, aborted bool, err error) {
	if err := pt.pac.Propose(v, pt.label); err != nil {
		return None, false, err
	}
	temp, err := pt.pac.Decide(pt.label)
	if err != nil {
		return None, false, err
	}
	if temp == Bottom {
		return None, true, nil
	}
	return temp, false, nil
}

// Propose retries TryPropose until a value is decided (the
// non-distinguished loop of Algorithm 2). maxAttempts bounds the
// retries (0 = unbounded).
func (pt *Port) Propose(v Value, maxAttempts int) (Value, error) {
	for attempt := 1; ; attempt++ {
		decided, aborted, err := pt.TryPropose(v)
		if err != nil {
			return None, err
		}
		if !aborted {
			return decided, nil
		}
		if maxAttempts > 0 && attempt >= maxAttempts {
			return None, fmt.Errorf("port %d: no decision after %d attempts: %w",
				pt.label, attempt, ErrBadOp)
		}
	}
}

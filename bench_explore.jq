# Builds BENCH_explore.json (see Makefile bench-json). Inputs arrive as
# --slurpfile w1/w4 (alg2 -n 4 unreduced at workers 1/4), s4i/s4v
# (alg2 -n 4 -symmetry ids/values), s5o/s5i (alg2 -n 5 off/ids),
# --rawfile benchmem (the -benchmem rows of BenchmarkModelCheckDAC's
# symmetry dimension), and --argjson seed (the seed explorer's
# sequential states/sec on the identical instance).
#
# Reduced runs intern orbit representatives: explore.states shrinks by
# up to the group order while the raw states_per_sec rate drops (each
# interned state pays a canonicalization minimum over the group). The
# honest throughput comparison is covered_states_per_sec: concrete
# states verified per second = unreduced state count / reduced wall
# time; covered_speedup_* divides that by the unreduced rate.

def sym(m): {
  states: m.counters["explore.states"],
  states_per_sec: m.rates["explore.states_per_sec"],
  seconds: m.duration_seconds,
  symmetry_hits: (m.counters["explore.symmetry_hits"] // 0),
  orbit_size_max: (m.gauges["explore.orbit_size_max"] // 1)
};

def compare(off; red): {
  states_reduction: (off.states / red.states),
  covered_states_per_sec: (off.states / red.seconds),
  covered_speedup: ((off.states / red.seconds) / off.states_per_sec)
};

{
  workers1: $w1[0],
  workers4: $w4[0],
  speedup_workers4_vs_workers1:
    ($w4[0].rates["explore.states_per_sec"] / $w1[0].rates["explore.states_per_sec"]),
  seed_sequential_states_per_sec: $seed,
  speedup_workers4_vs_seed_sequential:
    ($w4[0].rates["explore.states_per_sec"] / $seed),
  symmetry: {
    alg2_n4: (sym($w1[0]) as $off | sym($s4i[0]) as $ids | sym($s4v[0]) as $vals | {
      off: $off, ids: $ids, values: $vals,
      ids_vs_off: compare($off; $ids),
      values_vs_off: compare($off; $vals)
    }),
    alg2_n5: (sym($s5o[0]) as $off | sym($s5i[0]) as $ids | {
      off: $off, ids: $ids,
      ids_vs_off: compare($off; $ids)
    }),
    benchmem_raw: ($benchmem | split("\n") | map(select(test("symmetry"))))
  }
}

package setagree_test

import (
	"fmt"

	"setagree"
)

// The n-PAC object of §3: matched propose/decide pairs on a private
// label return the single consensus value; mismatched usage upsets the
// object permanently.
func ExampleNewPAC() {
	d := setagree.NewPAC(2)

	_ = d.Propose(7, 1) // PROPOSE(7, 1) -> done
	v, _ := d.Decide(1) // matching DECIDE(1)
	fmt.Println("decide(1):", v)

	_ = d.Propose(9, 2) // a later pair adopts the fixed value
	v, _ = d.Decide(2)
	fmt.Println("decide(2):", v)

	v, _ = d.Decide(1) // orphan decide: upsets the object
	fmt.Println("orphan decide:", v, "upset:", d.Upset())
	// Output:
	// decide(1): 7
	// decide(2): 7
	// orphan decide: ⊥ upset: true
}

// The n-consensus object of §4, footnote 6: the first n proposes get
// the first value; later proposes get ⊥.
func ExampleNewConsensus() {
	c := setagree.NewConsensus(2)
	for _, v := range []setagree.Value{4, 5, 6} {
		got, _ := c.Propose(v)
		fmt.Println(got)
	}
	// Output:
	// 4
	// 4
	// ⊥
}

// The strong 2-SA object of §4 (Algorithm 3): responses come from the
// first two distinct proposals. The default chooser answers with the
// earliest stored value.
func ExampleNewTwoSA() {
	s := setagree.NewTwoSA()
	for _, v := range []setagree.Value{1, 2, 3} {
		got, _ := s.Propose(v)
		fmt.Println(got)
	}
	// Output:
	// 1
	// 1
	// 1
}

// The (n,m)-PAC object of §5 exposes both component faces.
func ExampleNewPACM() {
	o := setagree.NewPACM(3, 2)

	v, _ := o.ProposeC(8) // m-consensus face
	fmt.Println("ProposeC:", v)

	_ = o.ProposeP(5, 3) // n-PAC face
	v, _ = o.DecideP(3)
	fmt.Println("DecideP:", v)
	// Output:
	// ProposeC: 8
	// DecideP: 5
}

// O'_n of §6: PROPOSE(v, k) routes to the (n_k, k)-SA component.
func ExampleNewOPrime() {
	o := setagree.NewOPrime(2, nil) // default power: n_k = 2k

	v, _ := o.Propose(6, 1) // level 1 = 2-consensus
	fmt.Println("k=1:", v)
	v, _ = o.Propose(7, 1)
	fmt.Println("k=1:", v)
	v, _ = o.Propose(8, 1) // third proposal at level 1: beyond n_1 = 2
	fmt.Println("k=1:", v)
	// Output:
	// k=1: 6
	// k=1: 6
	// k=1: ⊥
}

// Algorithm 2 live: the n-DAC problem among goroutines. With unanimous
// inputs, Validity forces every decision to that input.
func ExampleRunDAC() {
	inputs := []setagree.Value{1, 1, 1, 1}
	results, _ := setagree.RunDAC(4, 1, inputs, 0)

	ok := setagree.CheckDACOutcome(inputs, results, 1) == nil
	allOne := true
	for _, r := range results {
		if !r.Aborted && r.Decision != 1 {
			allOne = false
		}
	}
	fmt.Println("properties hold:", ok)
	fmt.Println("all decided 1 (or p aborted):", allOne)
	// Output:
	// properties hold: true
	// all decided 1 (or p aborted): true
}

// Herlihy's universal construction: a wait-free FIFO queue for n
// processes from n-consensus objects and registers.
func ExampleNewUniversalQueue() {
	u, _ := setagree.NewUniversalQueue(2)
	h1, _ := u.Handle(1)
	h2, _ := u.Handle(2)

	_ = h1.Enqueue(10)
	_ = h1.Enqueue(20)
	v, _ := h2.Dequeue()
	fmt.Println(v)
	v, _ = h2.Dequeue()
	fmt.Println(v)
	// Output:
	// 10
	// 20
}

package setagree

import (
	"setagree/internal/core"
	"setagree/internal/objects"
	"setagree/internal/universal"
	"setagree/internal/value"
)

// Universal is a wait-free linearizable object for n processes built
// from n-consensus objects and registers via Herlihy's universal
// construction [10] — the motivating theorem of the paper's
// introduction ("instances of any object with consensus number n,
// together with registers, can implement any object shared by up to n
// processes"). Obtain one per-process UniversalHandle and call the
// typed operation that matches the construction's target; operations
// outside the target's interface return ErrBadOp.
type Universal struct {
	u *universal.Universal
}

// NewUniversalQueue builds a wait-free FIFO queue for n processes from
// consensus objects and registers.
func NewUniversalQueue(n int) (*Universal, error) {
	u, err := universal.New(objects.NewQueue(), n)
	if err != nil {
		return nil, err
	}
	return &Universal{u: u}, nil
}

// NewUniversalCounter builds a wait-free fetch&add counter for n
// processes from consensus objects and registers.
func NewUniversalCounter(n int) (*Universal, error) {
	u, err := universal.New(objects.NewCounter(), n)
	if err != nil {
		return nil, err
	}
	return &Universal{u: u}, nil
}

// NewUniversalPAC builds a wait-free labels-PAC object for n processes
// from consensus objects and registers — the paper's own object as a
// universal-construction target (it is deterministic, so Corollary
// 6.7's subject is implementable this way once enough consensus power
// is granted).
func NewUniversalPAC(labels, n int) (*Universal, error) {
	u, err := universal.New(core.NewPAC(labels), n)
	if err != nil {
		return nil, err
	}
	return &Universal{u: u}, nil
}

// Procs returns the number of supported processes.
func (u *Universal) Procs() int { return u.u.Procs() }

// Handle returns process i's (1-based) access point. Each process must
// use its own handle; a handle is not safe for concurrent use.
func (u *Universal) Handle(i int) (*UniversalHandle, error) {
	h, err := u.u.Handle(i)
	if err != nil {
		return nil, err
	}
	return &UniversalHandle{h: h}, nil
}

// UniversalHandle is one process's access point to a Universal object.
type UniversalHandle struct {
	h *universal.Handle
}

// Enqueue appends v to a universal queue.
func (h *UniversalHandle) Enqueue(v Value) error {
	_, err := h.h.Apply(value.Enqueue(v))
	return err
}

// Dequeue removes and returns the head of a universal queue (None when
// empty at the operation's linearization point).
func (h *UniversalHandle) Dequeue() (Value, error) {
	return h.h.Apply(value.Dequeue())
}

// FetchAdd adds v to a universal counter and returns the prior total.
func (h *UniversalHandle) FetchAdd(v Value) (Value, error) {
	return h.h.Apply(value.FetchAdd(v))
}

// PACPropose applies PROPOSE(v, i) to a universal PAC object.
func (h *UniversalHandle) PACPropose(v Value, i int) error {
	_, err := h.h.Apply(value.ProposeAt(v, i))
	return err
}

// PACDecide applies DECIDE(i) to a universal PAC object.
func (h *UniversalHandle) PACDecide(i int) (Value, error) {
	return h.h.Apply(value.Decide(i))
}

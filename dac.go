package setagree

import (
	"errors"
	"fmt"
	"sync"
)

// DAC-runner failure modes.
var (
	// ErrBadDAC reports malformed RunDAC parameters.
	ErrBadDAC = errors.New("setagree: bad DAC parameters")
)

// DACResult is one process's outcome of an n-DAC execution.
type DACResult struct {
	// Decision is the decided value, or None if the process aborted.
	Decision Value
	// Aborted reports that the process aborted (distinguished process
	// only).
	Aborted bool
	// Attempts counts propose/decide rounds the process performed.
	Attempts int
}

// RunDAC solves the n-DAC problem (§4) among n goroutines with the
// paper's Algorithm 2, using a single n-PAC object: process p (1-based)
// is the distinguished process, which tries one propose/decide pair and
// aborts on ⊥; every other process retries until its decide returns a
// value. Inputs are binary. It returns each process's outcome.
//
// RunDAC demonstrates Theorem 4.1 live. Non-distinguished processes are
// only guaranteed to decide in solo runs (Termination (b)); under the
// Go scheduler the retry loop terminates with probability 1, and
// maxAttempts (0 means unbounded) provides a hard stop for callers that
// need one — hitting it returns an error rather than a fabricated
// decision.
func RunDAC(n, p int, inputs []Value, maxAttempts int) ([]DACResult, error) {
	if n < 2 || p < 1 || p > n {
		return nil, fmt.Errorf("n=%d p=%d: %w", n, p, ErrBadDAC)
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("%d inputs for %d processes: %w", len(inputs), n, ErrBadDAC)
	}
	for i, v := range inputs {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("input %d of process %d is not binary: %w", v, i+1, ErrBadDAC)
		}
	}

	d := NewPAC(n)
	results := make([]DACResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for q := 1; q <= n; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			if q == p {
				results[q-1], errs[q-1] = dacDistinguished(d, inputs[q-1], q)
			} else {
				results[q-1], errs[q-1] = dacOther(d, inputs[q-1], q, maxAttempts)
			}
		}(q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// dacDistinguished is Algorithm 2 lines 1-5.
func dacDistinguished(d *PAC, v Value, label int) (DACResult, error) {
	if err := d.Propose(v, label); err != nil {
		return DACResult{}, err
	}
	temp, err := d.Decide(label)
	if err != nil {
		return DACResult{}, err
	}
	if temp != Bottom {
		return DACResult{Decision: temp, Attempts: 1}, nil
	}
	return DACResult{Decision: None, Aborted: true, Attempts: 1}, nil
}

// dacOther is Algorithm 2 lines 6-11.
func dacOther(d *PAC, v Value, label, maxAttempts int) (DACResult, error) {
	for attempt := 1; ; attempt++ {
		if err := d.Propose(v, label); err != nil {
			return DACResult{}, err
		}
		temp, err := d.Decide(label)
		if err != nil {
			return DACResult{}, err
		}
		if temp != Bottom {
			return DACResult{Decision: temp, Attempts: attempt}, nil
		}
		if maxAttempts > 0 && attempt >= maxAttempts {
			return DACResult{}, fmt.Errorf("process %d: no decision after %d attempts: %w",
				label, attempt, ErrBadDAC)
		}
	}
}

// CheckDACOutcome validates an n-DAC outcome against the §4 properties
// that are checkable from results alone (Agreement, Validity,
// Nontriviality's abort-side is enforced by construction since only p
// may abort in RunDAC). It is exported so examples and downstream users
// can assert their runs.
func CheckDACOutcome(inputs []Value, results []DACResult, p int) error {
	decided := None
	for i, r := range results {
		if r.Aborted {
			if i+1 != p {
				return fmt.Errorf("process %d aborted but is not distinguished: %w", i+1, ErrBadDAC)
			}
			continue
		}
		if r.Decision != 0 && r.Decision != 1 {
			return fmt.Errorf("process %d decided non-binary %s: %w", i+1, r.Decision, ErrBadDAC)
		}
		if decided == None {
			decided = r.Decision
		} else if decided != r.Decision {
			return fmt.Errorf("agreement: %s vs %s: %w", decided, r.Decision, ErrBadDAC)
		}
	}
	if decided == None {
		return nil
	}
	for i, v := range inputs {
		if v == decided && !results[i].Aborted {
			return nil
		}
	}
	return fmt.Errorf("validity: decided %s proposed only by aborted processes: %w", decided, ErrBadDAC)
}
